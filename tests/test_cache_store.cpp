// Tests for the persistent ScenarioCache store (engine/cache_store):
// exact payload round-trips for all five outcome families, deterministic
// file bytes, corruption tolerance (truncated files, flipped bytes, bad
// headers — skip, never crash), merge semantics, and cross-run hit
// counting through a file (the single-machine model of the cross-process
// hand-off rv_batch performs).

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "engine/cache_store.hpp"
#include "engine/failpoint.hpp"
#include "engine/families.hpp"
#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"

namespace {

namespace fs = std::filesystem;
using rv::engine::CacheLoadStats;
using rv::engine::ScenarioCache;

/// Bit-exact double comparison: NaNs with equal payloads compare equal,
/// +0.0 and -0.0 do not — exactly what "replayed outcomes emit the same
/// bytes" requires.
bool same_bits(double a, double b) {
  std::uint64_t ab = 0, bb = 0;
  std::memcpy(&ab, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  return ab == bb;
}

/// Fresh scratch directory per test, removed on destruction.
struct Scratch {
  fs::path path;
  Scratch() {
    path = fs::temp_directory_path() / "rv_cache_store_XXXXXX";
    std::string buffer = path.string();
    EXPECT_NE(mkdtemp(buffer.data()), nullptr);
    path = buffer;
  }
  ~Scratch() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

rv::sim::SimResult sample_sim_result() {
  rv::sim::SimResult sim;
  sim.met = true;
  sim.time = 12.3456789012345;
  sim.distance = 0.05;
  sim.min_distance = 0.0125;
  sim.min_distance_time = 11.5;
  sim.position1 = {1.25, -2.5};
  sim.position2 = {1.3, -2.45};
  sim.evals = 421;
  sim.segments = 97;
  return sim;
}

/// Serialize → deserialize under `key` and require success.
ScenarioCache::Entry round_trip(const std::string& key,
                                const ScenarioCache::Entry& entry) {
  const std::string payload = rv::engine::serialize_entry(key, entry);
  ScenarioCache::Entry decoded;
  EXPECT_TRUE(rv::engine::deserialize_entry(key, payload, &decoded))
      << "family byte: " << key[0];
  return decoded;
}

TEST(CacheStoreSerialization, RendezvousOutcomeRoundTripsExactly) {
  ScenarioCache::Entry entry;
  entry.outcome.sim = sample_sim_result();
  entry.outcome.feasibility = rv::rendezvous::classify(
      rv::geom::reference_attributes());
  entry.outcome.initial_distance = -0.0;  // sign must survive
  entry.outcome.algorithm_name = "algorithm7";

  const ScenarioCache::Entry decoded = round_trip("R-key", entry);
  EXPECT_EQ(decoded.outcome.sim.met, entry.outcome.sim.met);
  EXPECT_TRUE(same_bits(decoded.outcome.sim.time, entry.outcome.sim.time));
  EXPECT_TRUE(same_bits(decoded.outcome.sim.position2.y,
                        entry.outcome.sim.position2.y));
  EXPECT_EQ(decoded.outcome.sim.evals, entry.outcome.sim.evals);
  EXPECT_EQ(decoded.outcome.sim.segments, entry.outcome.sim.segments);
  EXPECT_EQ(decoded.outcome.feasibility, entry.outcome.feasibility);
  EXPECT_TRUE(same_bits(decoded.outcome.initial_distance, -0.0));
  EXPECT_EQ(decoded.outcome.algorithm_name, "algorithm7");
}

TEST(CacheStoreSerialization, SearchOutcomeRoundTripsExactly) {
  ScenarioCache::Entry entry;
  entry.search_outcome.found = 7;
  entry.search_outcome.missed = 1;
  entry.search_outcome.complete = false;
  entry.search_outcome.worst_time = 123.456;
  entry.search_outcome.mean_time = 98.7;
  entry.search_outcome.worst_angle = -2.7488935718910690836;
  entry.search_outcome.first_miss_angle = 0.03;
  entry.search_outcome.program_name = "algorithm4";
  entry.search_outcome.evals = 123456789ull;
  entry.search_outcome.segments = 987654321ull;

  const ScenarioCache::Entry decoded = round_trip("S-key", entry);
  EXPECT_EQ(decoded.search_outcome.found, 7);
  EXPECT_EQ(decoded.search_outcome.missed, 1);
  EXPECT_FALSE(decoded.search_outcome.complete);
  EXPECT_TRUE(same_bits(decoded.search_outcome.worst_angle,
                        entry.search_outcome.worst_angle));
  EXPECT_EQ(decoded.search_outcome.program_name, "algorithm4");
  EXPECT_EQ(decoded.search_outcome.evals, entry.search_outcome.evals);
  EXPECT_EQ(decoded.search_outcome.segments, entry.search_outcome.segments);
}

TEST(CacheStoreSerialization, GatherOutcomeRoundTripsExactly) {
  ScenarioCache::Entry entry;
  entry.gather_outcome.contact.achieved = true;
  entry.gather_outcome.contact.time = 17.25;
  entry.gather_outcome.contact.pair_i = 0;
  entry.gather_outcome.contact.pair_j = 2;
  entry.gather_outcome.contact.max_pairwise = 3.5;
  entry.gather_outcome.contact.min_max_pairwise = 0.19;
  entry.gather_outcome.contact.evals = 77;
  entry.gather_outcome.contact.segments = 31;
  entry.gather_outcome.gathered.achieved = false;
  entry.gather_outcome.gathered.time = 2e5;
  entry.gather_outcome.gathered.pair_i = -1;
  entry.gather_outcome.gathered.pair_j = -1;
  entry.gather_outcome.gathered.min_max_pairwise =
      std::numeric_limits<double>::infinity();  // non-finite must survive

  const ScenarioCache::Entry decoded = round_trip("G-key", entry);
  EXPECT_TRUE(decoded.gather_outcome.contact.achieved);
  EXPECT_EQ(decoded.gather_outcome.contact.pair_j, 2);
  EXPECT_TRUE(same_bits(decoded.gather_outcome.contact.min_max_pairwise,
                        0.19));
  EXPECT_FALSE(decoded.gather_outcome.gathered.achieved);
  EXPECT_EQ(decoded.gather_outcome.gathered.pair_i, -1);
  EXPECT_TRUE(std::isinf(decoded.gather_outcome.gathered.min_max_pairwise));
}

TEST(CacheStoreSerialization, LinearOutcomeRoundTripsExactly) {
  ScenarioCache::Entry entry;
  entry.linear_outcome.feasible = true;
  entry.linear_outcome.sim = sample_sim_result();

  const ScenarioCache::Entry decoded = round_trip("L-key", entry);
  EXPECT_TRUE(decoded.linear_outcome.feasible);
  EXPECT_TRUE(same_bits(decoded.linear_outcome.sim.min_distance_time,
                        entry.linear_outcome.sim.min_distance_time));
  EXPECT_EQ(decoded.linear_outcome.sim.segments,
            entry.linear_outcome.sim.segments);
}

TEST(CacheStoreSerialization, CoverageOutcomeRoundTripsExactly) {
  ScenarioCache::Entry entry;
  entry.coverage_outcome.series = {
      {0.0, 0.0, 0.0}, {10.0, 0.5, 3.53}, {20.0, 0.995, 7.03}};
  entry.coverage_outcome.program_name = "square-spiral";
  entry.coverage_outcome.t50 = 10.0;
  entry.coverage_outcome.t99 = 20.0;
  entry.coverage_outcome.final_fraction = 0.995;
  entry.coverage_outcome.covered_area = 7.03;

  const ScenarioCache::Entry decoded = round_trip("C-key", entry);
  ASSERT_EQ(decoded.coverage_outcome.series.size(), 3u);
  EXPECT_TRUE(same_bits(decoded.coverage_outcome.series[1].fraction, 0.5));
  EXPECT_TRUE(same_bits(decoded.coverage_outcome.series[2].covered_area,
                        7.03));
  EXPECT_EQ(decoded.coverage_outcome.program_name, "square-spiral");
  EXPECT_TRUE(same_bits(decoded.coverage_outcome.t99, 20.0));
}

TEST(CacheStoreSerialization, RejectsUnknownFamilyAndTrailingBytes) {
  ScenarioCache::Entry entry;
  EXPECT_THROW((void)rv::engine::serialize_entry("", entry),
               std::invalid_argument);
  EXPECT_THROW((void)rv::engine::serialize_entry("Xkey", entry),
               std::invalid_argument);

  ScenarioCache::Entry decoded;
  EXPECT_FALSE(rv::engine::deserialize_entry("Xkey", "abc", &decoded));
  // A valid payload with appended garbage is corrupt, not "close enough".
  std::string payload = rv::engine::serialize_entry("L-key", entry);
  payload += '\0';
  EXPECT_FALSE(rv::engine::deserialize_entry("L-key", payload, &decoded));
  // A truncated payload is corrupt too.
  payload = rv::engine::serialize_entry("L-key", entry);
  payload.pop_back();
  EXPECT_FALSE(rv::engine::deserialize_entry("L-key", payload, &decoded));
}

TEST(CacheStoreSerialization, RejectsCoverageCountLargerThanPayload) {
  // A crafted 'C' payload claiming a huge series count must be
  // rejected *before* any allocation: the count is only believable if
  // the remaining bytes can pay for it (3 doubles per point).
  std::string payload;
  const std::uint32_t huge = 0x0FFFFFFF;
  payload.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  payload.append(64, '\0');  // far fewer than huge * 24 bytes
  ScenarioCache::Entry decoded;
  EXPECT_FALSE(rv::engine::deserialize_entry("C-key", payload, &decoded));
  EXPECT_TRUE(decoded.coverage_outcome.series.empty());
}

/// A small all-family scenario set, used to populate caches with real
/// computed outcomes.
rv::engine::ScenarioSet small_all_family_set() {
  rv::engine::ScenarioSet set;
  rv::rendezvous::Scenario scenario;
  scenario.attrs.speed = 1.5;
  scenario.visibility = 0.25;
  scenario.max_time = 1e3;
  set.add(scenario);

  rv::engine::SearchCell search;
  search.angles = 3;
  search.distance = 1.0;
  search.visibility = 0.25;
  search.max_time = 1e3;
  set.add_search(search);

  rv::engine::GatherCell gather;
  rv::geom::RobotAttributes fast = rv::geom::reference_attributes();
  fast.speed = 2.0;
  gather.fleet = {rv::geom::reference_attributes(), fast};
  gather.visibility = 0.2;
  gather.contact_max_time = 1e3;
  gather.gather_max_time = 1e3;
  set.add_gather(gather);

  rv::engine::LinearCell linear;
  linear.mode = rv::engine::LinearMode::kZigZagSearch;
  linear.target = 1.0;
  linear.visibility = 0.01;
  linear.max_time = 1e3;
  set.add_linear(linear);

  rv::engine::CoverageCell coverage;
  coverage.disk_radius = 0.5;
  coverage.visibility = 0.1;
  coverage.cell = 0.05;
  coverage.checkpoints = 4;
  coverage.horizon = 50.0;
  set.add_coverage(coverage);
  return set;
}

/// Runs `set` with a fresh cache attached; returns the cache populated
/// with the computed outcomes.
void populate(const rv::engine::ScenarioSet& set, ScenarioCache* cache,
              std::string* csv = nullptr) {
  rv::engine::RunnerOptions options;
  options.threads = 1;
  options.cache = cache;
  const rv::engine::ResultSet results = rv::engine::run_scenarios(set, options);
  EXPECT_EQ(results.cache_stats().misses, results.size());
  if (csv != nullptr) {
    *csv = results.filtered(rv::engine::Family::kSearch).to_csv();
  }
}

TEST(CacheStoreFile, SaveLoadRoundTripsAllFamilies) {
  Scratch scratch;
  ScenarioCache cache;
  populate(small_all_family_set(), &cache);
  ASSERT_EQ(cache.size(), 5u);  // one entry per family

  const fs::path path = scratch.path / "all.rvcache";
  rv::engine::save_cache_file(path, cache);

  ScenarioCache loaded;
  const CacheLoadStats stats = rv::engine::load_cache_file(path, &loaded);
  EXPECT_EQ(stats.files, 1u);
  EXPECT_EQ(stats.loaded, 5u);
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_EQ(stats.bad_files, 0u);

  // The loaded cache must be *indistinguishable* from the original:
  // same keys, bitwise-same payloads.
  const auto want = cache.snapshot();
  const auto got = loaded.snapshot();
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].first, got[i].first);
    EXPECT_EQ(rv::engine::serialize_entry(want[i].first, want[i].second),
              rv::engine::serialize_entry(got[i].first, got[i].second));
  }
}

TEST(CacheStoreFile, SavedBytesAreDeterministic) {
  Scratch scratch;
  ScenarioCache cache;
  populate(small_all_family_set(), &cache);

  const fs::path a = scratch.path / "a.rvcache";
  const fs::path b = scratch.path / "b.rvcache";
  rv::engine::save_cache_file(a, cache);
  // A cache rebuilt through a different path (load, not compute) must
  // serialize to the same bytes — snapshot order is key order, not
  // insertion order.
  ScenarioCache reloaded;
  (void)rv::engine::load_cache_file(a, &reloaded);
  rv::engine::save_cache_file(b, reloaded);
  std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
  std::string sa((std::istreambuf_iterator<char>(fa)),
                 std::istreambuf_iterator<char>());
  std::string sb((std::istreambuf_iterator<char>(fb)),
                 std::istreambuf_iterator<char>());
  EXPECT_EQ(sa, sb);
  EXPECT_FALSE(sa.empty());
}

TEST(CacheStoreFile, WarmRunFromDiskHitsEverythingAndEmitsSameBytes) {
  Scratch scratch;
  // "Process A": compute, persist.
  ScenarioCache first;
  std::string cold_csv;
  populate(small_all_family_set(), &first, &cold_csv);
  const fs::path path = scratch.path / "a.rvcache";
  rv::engine::save_cache_file(path, first);

  // "Process B": a fresh cache warm-loaded from A's file.  Every item
  // replays (cross-process hit counting) and emission is byte-identical.
  ScenarioCache second;
  (void)rv::engine::load_cache_file(path, &second);
  rv::engine::RunnerOptions options;
  options.threads = 1;
  options.cache = &second;
  const rv::engine::ResultSet warm =
      rv::engine::run_scenarios(small_all_family_set(), options);
  EXPECT_EQ(warm.cache_stats().hits, warm.size());
  EXPECT_EQ(warm.cache_stats().misses, 0u);
  EXPECT_EQ(warm.cache_stats().uncacheable, 0u);
  EXPECT_EQ(warm.filtered(rv::engine::Family::kSearch).to_csv(), cold_csv);
}

TEST(CacheStoreFile, MissingFileAndBadHeaderAreReportedNotThrown) {
  Scratch scratch;
  ScenarioCache cache;
  CacheLoadStats stats =
      rv::engine::load_cache_file(scratch.path / "absent.rvcache", &cache);
  EXPECT_EQ(stats.bad_files, 1u);
  EXPECT_EQ(stats.loaded, 0u);

  const fs::path garbage = scratch.path / "garbage.rvcache";
  std::ofstream(garbage, std::ios::binary) << "not a cache file at all";
  stats = rv::engine::load_cache_file(garbage, &cache);
  EXPECT_EQ(stats.bad_files, 1u);
  EXPECT_EQ(stats.loaded, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CacheStoreFile, RejectsFilesFromAnotherEngineEpoch) {
  // Outcomes persisted by a different engine generation must not
  // replay as current results: a flipped epoch field makes the whole
  // file a bad_file (recomputed on the next run), not a cache hit.
  Scratch scratch;
  ScenarioCache cache;
  populate(small_all_family_set(), &cache);
  const fs::path path = scratch.path / "epoch.rvcache";
  rv::engine::save_cache_file(path, cache);

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  bytes[8] = static_cast<char>(bytes[8] ^ 0xFF);  // epoch lives at offset 8
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;

  ScenarioCache loaded;
  const CacheLoadStats stats = rv::engine::load_cache_file(path, &loaded);
  EXPECT_EQ(stats.bad_files, 1u);
  EXPECT_EQ(stats.loaded, 0u);
  EXPECT_EQ(loaded.size(), 0u);
}

TEST(CacheStoreFile, TruncatedFileLoadsThePrefixAndNeverCrashes) {
  Scratch scratch;
  ScenarioCache cache;
  populate(small_all_family_set(), &cache);
  const fs::path path = scratch.path / "full.rvcache";
  rv::engine::save_cache_file(path, cache);
  const auto full_size = fs::file_size(path);

  // Chop the file at every suffix length down to below the header: the
  // loader must never crash and never load more than it can verify.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_EQ(bytes.size(), full_size);
  for (const std::size_t keep :
       {full_size - 3, full_size / 2, full_size / 4, std::size_t{13},
        std::size_t{9}, std::size_t{3}}) {
    const fs::path cut = scratch.path / "cut.rvcache";
    std::ofstream(cut, std::ios::binary) << bytes.substr(0, keep);
    ScenarioCache partial;
    const CacheLoadStats stats = rv::engine::load_cache_file(cut, &partial);
    if (keep < 12) {  // header: 8-byte magic + u32 engine epoch
      EXPECT_EQ(stats.bad_files, 1u) << "keep=" << keep;
    } else {
      EXPECT_LE(partial.size(), cache.size()) << "keep=" << keep;
      if (keep < full_size) {
        EXPECT_GE(stats.skipped, 1u) << "keep=" << keep;
      }
    }
  }
}

TEST(CacheStoreFile, CorruptRecordIsSkippedNeighboursSurvive) {
  Scratch scratch;
  ScenarioCache cache;
  populate(small_all_family_set(), &cache);
  const fs::path path = scratch.path / "flip.rvcache";
  rv::engine::save_cache_file(path, cache);

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  // Flip one byte in the middle of the second record's body (past the
  // header and first record): its checksum fails, the reader resyncs,
  // and every other record still loads.
  const std::size_t target = bytes.size() / 2;
  bytes[target] = static_cast<char>(bytes[target] ^ 0x5A);
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;

  ScenarioCache damaged;
  const CacheLoadStats stats = rv::engine::load_cache_file(path, &damaged);
  EXPECT_GE(stats.skipped, 1u);
  EXPECT_GE(stats.loaded, cache.size() - 2);
  EXPECT_LT(stats.loaded, cache.size());
}

TEST(CacheStoreFile, MalformedLengthRecordIsRejectedBeforeAllocation) {
  // A record header may CLAIM any key/payload size; the loader must
  // bounds-check the claim against the remaining bytes (and the
  // absolute kMaxFieldSize cap) *before* allocating or reading — a
  // corrupt length field is garbage, not an allocation request.  This
  // pins the check the ASan leg of the sanitizer matrix watches: if
  // the loader ever trusts the claimed length first, these inputs
  // become huge allocations / out-of-bounds reads instead of a clean
  // `skipped` count.
  Scratch scratch;
  ScenarioCache cache;
  populate(small_all_family_set(), &cache);
  const fs::path path = scratch.path / "evil.rvcache";
  rv::engine::save_cache_file(path, cache);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), 12u);

  const auto u32 = [](std::uint32_t v) {
    std::string out(4, '\0');
    std::memcpy(out.data(), &v, 4);
    return out;
  };
  constexpr std::uint32_t kMagic = 0x52435245;  // "ERCR"
  struct Claim {
    const char* what;
    std::uint32_t key_size;
    std::uint32_t payload_size;
  };
  const Claim claims[] = {
      // Within the per-field cap but far beyond the file: only the
      // remaining-bytes check stands between this and a ~512 MiB read.
      {"sizes beyond the file", (1u << 28) - 16, (1u << 28) - 16},
      // Beyond the per-field cap: must be rejected even though the
      // u32 arithmetic would not overflow size_t.
      {"key_size above kMaxFieldSize", 0xFFFFFFFFu, 8},
      {"payload_size above kMaxFieldSize", 8, 0xFFFFFFFFu},
  };
  for (const Claim& claim : claims) {
    // Splice the malicious record header between the file header and
    // the valid records.
    const std::string evil = bytes.substr(0, 12) + u32(kMagic) +
                             u32(claim.key_size) + u32(claim.payload_size) +
                             bytes.substr(12);
    const fs::path evil_path = scratch.path / "spliced.rvcache";
    std::ofstream(evil_path, std::ios::binary | std::ios::trunc) << evil;
    ScenarioCache out;
    const CacheLoadStats stats = rv::engine::load_cache_file(evil_path, &out);
    EXPECT_EQ(stats.files, 1u) << claim.what;
    EXPECT_EQ(stats.skipped, 1u) << claim.what;
    // The reader resynchronises on the next record magic, so every
    // genuine record after the lie still loads.
    EXPECT_EQ(stats.loaded, cache.size()) << claim.what;
    EXPECT_EQ(out.size(), cache.size()) << claim.what;
  }
}

TEST(CacheStoreFile, MergeUnionsInputsFirstWriterWins) {
  Scratch scratch;
  // Two overlapping caches: {all 5 families} and {search only, but a
  // different cell}.
  ScenarioCache a;
  populate(small_all_family_set(), &a);

  rv::engine::ScenarioSet extra;
  rv::engine::SearchCell other;
  other.angles = 2;
  other.distance = 2.0;
  other.visibility = 0.5;
  other.max_time = 1e3;
  extra.add_search(other);
  ScenarioCache b;
  populate(small_all_family_set(), &b);  // duplicates of a
  populate(extra, &b);                   // plus one new key

  const fs::path file_a = scratch.path / "a.rvcache";
  const fs::path file_b = scratch.path / "b.rvcache";
  const fs::path merged = scratch.path / "merged.rvcache";
  rv::engine::save_cache_file(file_a, a);
  rv::engine::save_cache_file(file_b, b);

  const CacheLoadStats stats =
      rv::engine::merge_cache_files({file_a, file_b}, merged);
  EXPECT_EQ(stats.files, 2u);
  EXPECT_EQ(stats.loaded, 6u);      // 5 from a + 1 new from b
  EXPECT_EQ(stats.duplicates, 5u);  // b's copies of a's keys

  ScenarioCache out;
  const CacheLoadStats merged_stats =
      rv::engine::load_cache_file(merged, &out);
  EXPECT_EQ(merged_stats.loaded, 6u);
  EXPECT_EQ(out.size(), 6u);
}

TEST(CacheStoreDir, LoadsEveryCacheFileInNameOrder) {
  Scratch scratch;
  ScenarioCache cache;
  populate(small_all_family_set(), &cache);
  rv::engine::save_cache_file(scratch.path / "shard-0.rvcache", cache);
  rv::engine::save_cache_file(scratch.path / "shard-1.rvcache", cache);
  std::ofstream(scratch.path / "notes.txt") << "ignored";

  ScenarioCache loaded;
  const CacheLoadStats stats =
      rv::engine::load_cache_dir(scratch.path, &loaded);
  EXPECT_EQ(stats.files, 2u);
  EXPECT_EQ(stats.loaded, 5u);
  EXPECT_EQ(stats.duplicates, 5u);
  EXPECT_EQ(loaded.size(), 5u);

  // A missing directory is simply empty.
  ScenarioCache empty;
  const CacheLoadStats none =
      rv::engine::load_cache_dir(scratch.path / "absent", &empty);
  EXPECT_EQ(none.files, 0u);
  EXPECT_EQ(empty.size(), 0u);
}

TEST(CacheStoreFile, MergeOutputMayAliasAnInput) {
  // Pinned contract from cache_store.hpp: `output` may alias one of
  // `inputs`.  Every input is fully loaded before the save starts and
  // the save is atomic-by-rename, so merging "into" an input replaces
  // it with the union in one step.  compact_cache_dir leans on this
  // when the previous compact.rvcache is among the inputs.
  Scratch scratch;
  ScenarioCache a;
  populate(small_all_family_set(), &a);

  rv::engine::ScenarioSet extra;
  rv::engine::SearchCell other;
  other.angles = 2;
  other.distance = 2.0;
  other.visibility = 0.5;
  other.max_time = 1e3;
  extra.add_search(other);
  ScenarioCache b;
  populate(extra, &b);

  const fs::path file_a = scratch.path / "a.rvcache";
  const fs::path file_b = scratch.path / "b.rvcache";
  rv::engine::save_cache_file(file_a, a);
  rv::engine::save_cache_file(file_b, b);

  std::vector<CacheLoadStats> per_file;
  const CacheLoadStats stats =
      rv::engine::merge_cache_files({file_a, file_b}, file_a, &per_file);
  EXPECT_EQ(stats.files, 2u);
  EXPECT_EQ(stats.loaded, 6u);
  ASSERT_EQ(per_file.size(), 2u);
  EXPECT_EQ(per_file[0].loaded, 5u);
  EXPECT_EQ(per_file[1].loaded, 1u);

  // file_a now holds the union; file_b is untouched.
  ScenarioCache out;
  EXPECT_EQ(rv::engine::load_cache_file(file_a, &out).loaded, 6u);
  EXPECT_EQ(out.size(), 6u);
  ScenarioCache b_again;
  EXPECT_EQ(rv::engine::load_cache_file(file_b, &b_again).loaded, 1u);

  // Degenerate self-merge: the union of {a} written onto a is a no-op
  // byte-for-byte (sorted-by-key saves are canonical).
  std::ifstream before_stream(file_a, std::ios::binary);
  const std::string before((std::istreambuf_iterator<char>(before_stream)),
                           std::istreambuf_iterator<char>());
  (void)rv::engine::merge_cache_files({file_a}, file_a);
  std::ifstream after_stream(file_a, std::ios::binary);
  const std::string after((std::istreambuf_iterator<char>(after_stream)),
                          std::istreambuf_iterator<char>());
  EXPECT_EQ(before, after);
  EXPECT_FALSE(before.empty());
}

// ---------------------------------------------------------------------------
// compact_cache_dir: merge + dedupe + wrong-epoch drop, age and byte
// budget eviction with a deterministic oldest-first victim order, and
// idempotent re-compaction (the previous output is just another input).
// ---------------------------------------------------------------------------

namespace compact_helpers {

using rv::engine::CompactResult;
using Disposition = rv::engine::CompactResult::Disposition;

/// Saves `cache` under `name` inside `dir` and returns the path.
fs::path save_as(const fs::path& dir, const std::string& name,
                 const ScenarioCache& cache) {
  const fs::path path = dir / name;
  rv::engine::save_cache_file(path, cache);
  return path;
}

/// Rewrites `path` with its engine-epoch field flipped (offset 8).
void flip_epoch(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), 8u);
  bytes[8] = static_cast<char>(bytes[8] ^ 0xFF);
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
}

/// Backdates `path` by `hours` relative to its current mtime — a
/// deterministic offset, not a wall-clock race.
void backdate(const fs::path& path, int hours) {
  const auto now = fs::last_write_time(path);
  fs::last_write_time(path, now - std::chrono::hours(hours));
}

/// The disposition recorded for `name`, or nullopt when absent.
const CompactResult::FileReport* report_for(const CompactResult& result,
                                            const std::string& name) {
  for (const auto& report : result.files) {
    if (report.path.filename() == name) return &report;
  }
  return nullptr;
}

}  // namespace compact_helpers

TEST(CacheStoreCompact, MergesDedupesAndDropsWrongEpochFiles) {
  using namespace compact_helpers;
  Scratch scratch;
  ScenarioCache cache;
  populate(small_all_family_set(), &cache);
  save_as(scratch.path, "shard-0.rvcache", cache);
  save_as(scratch.path, "shard-1.rvcache", cache);  // pure duplicates
  flip_epoch(save_as(scratch.path, "old-epoch.rvcache", cache));
  std::ofstream(scratch.path / "notes.txt") << "ignored";

  const auto result = rv::engine::compact_cache_dir(scratch.path);
  EXPECT_EQ(result.entries, 5u);
  EXPECT_EQ(result.stats.loaded, 5u);
  EXPECT_EQ(result.stats.duplicates, 5u);
  EXPECT_EQ(result.stats.bad_files, 1u);
  ASSERT_EQ(result.files.size(), 3u);
  ASSERT_NE(report_for(result, "old-epoch.rvcache"), nullptr);
  EXPECT_EQ(report_for(result, "old-epoch.rvcache")->disposition,
            Disposition::kDroppedBad);
  EXPECT_EQ(report_for(result, "shard-0.rvcache")->disposition,
            Disposition::kMerged);
  EXPECT_EQ(report_for(result, "shard-1.rvcache")->disposition,
            Disposition::kMerged);

  // The directory holds exactly the output (plus the non-cache file);
  // a warm dir load sees the same 5 entries the shards held.
  EXPECT_EQ(result.output, scratch.path / "compact.rvcache");
  const auto files = rv::engine::list_cache_files(scratch.path);
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(files[0], result.output);
  EXPECT_TRUE(fs::exists(scratch.path / "notes.txt"));
  EXPECT_EQ(fs::file_size(result.output), result.output_bytes);
  ScenarioCache warm;
  EXPECT_EQ(rv::engine::load_cache_dir(scratch.path, &warm).loaded, 5u);
}

TEST(CacheStoreCompact, EvictsByAgeWithoutOpeningTheFile) {
  using namespace compact_helpers;
  Scratch scratch;
  ScenarioCache cache;
  populate(small_all_family_set(), &cache);

  rv::engine::ScenarioSet extra;
  rv::engine::SearchCell other;
  other.angles = 2;
  other.distance = 2.0;
  other.visibility = 0.5;
  other.max_time = 1e3;
  extra.add_search(other);
  ScenarioCache stale;
  populate(extra, &stale);

  save_as(scratch.path, "fresh.rvcache", cache);
  backdate(save_as(scratch.path, "stale.rvcache", stale), 10 * 24);

  rv::engine::CompactOptions options;
  options.max_age_days = 5.0;
  const auto result = rv::engine::compact_cache_dir(scratch.path, options);
  ASSERT_NE(report_for(result, "stale.rvcache"), nullptr);
  EXPECT_EQ(report_for(result, "stale.rvcache")->disposition,
            Disposition::kEvictedAge);
  // Evicted files are never opened: their stats stay zero.
  EXPECT_EQ(report_for(result, "stale.rvcache")->stats.files, 0u);
  EXPECT_EQ(report_for(result, "fresh.rvcache")->disposition,
            Disposition::kMerged);
  EXPECT_EQ(result.entries, 5u);  // the stale file's lone key is gone
  EXPECT_FALSE(fs::exists(scratch.path / "stale.rvcache"));
  ScenarioCache warm;
  EXPECT_EQ(rv::engine::load_cache_dir(scratch.path, &warm).loaded, 5u);
}

TEST(CacheStoreCompact, ByteBudgetEvictsOldestFirstDeterministically) {
  using namespace compact_helpers;
  Scratch scratch;
  ScenarioCache cache;
  populate(small_all_family_set(), &cache);
  // Three same-sized files with strictly ordered mtimes: oldest,
  // middle, newest (names chosen so name order != age order).
  backdate(save_as(scratch.path, "c-oldest.rvcache", cache), 3);
  backdate(save_as(scratch.path, "a-middle.rvcache", cache), 2);
  backdate(save_as(scratch.path, "b-newest.rvcache", cache), 1);
  const auto one_size = fs::file_size(scratch.path / "b-newest.rvcache");

  // Budget for exactly one input: the two oldest are evicted, oldest
  // first, and the report lists them in victim order.
  rv::engine::CompactOptions options;
  options.max_bytes = one_size;
  const auto result = rv::engine::compact_cache_dir(scratch.path, options);
  ASSERT_EQ(result.files.size(), 3u);
  EXPECT_EQ(report_for(result, "b-newest.rvcache")->disposition,
            Disposition::kMerged);
  EXPECT_EQ(report_for(result, "c-oldest.rvcache")->disposition,
            Disposition::kEvictedBudget);
  EXPECT_EQ(report_for(result, "a-middle.rvcache")->disposition,
            Disposition::kEvictedBudget);
  // Victim order within the report: merged first, then evictions
  // oldest first.
  EXPECT_EQ(result.files[0].path.filename(), "b-newest.rvcache");
  EXPECT_EQ(result.files[1].path.filename(), "c-oldest.rvcache");
  EXPECT_EQ(result.files[2].path.filename(), "a-middle.rvcache");
  EXPECT_EQ(result.entries, 5u);
  ScenarioCache warm;
  EXPECT_EQ(rv::engine::load_cache_dir(scratch.path, &warm).loaded, 5u);
}

TEST(CacheStoreCompact, RecompactionIsIdempotent) {
  using namespace compact_helpers;
  Scratch scratch;
  ScenarioCache cache;
  populate(small_all_family_set(), &cache);
  save_as(scratch.path, "shard-0.rvcache", cache);
  save_as(scratch.path, "shard-1.rvcache", cache);

  const auto first = rv::engine::compact_cache_dir(scratch.path);
  std::ifstream first_stream(first.output, std::ios::binary);
  const std::string first_bytes(
      (std::istreambuf_iterator<char>(first_stream)),
      std::istreambuf_iterator<char>());

  // Second compaction: the previous output is the only input, merged
  // into itself (the alias-safety contract) — same entries, same bytes.
  const auto second = rv::engine::compact_cache_dir(scratch.path);
  EXPECT_EQ(second.entries, first.entries);
  ASSERT_EQ(second.files.size(), 1u);
  EXPECT_EQ(second.files[0].path, first.output);
  EXPECT_EQ(second.files[0].disposition, Disposition::kMerged);
  std::ifstream second_stream(second.output, std::ios::binary);
  const std::string second_bytes(
      (std::istreambuf_iterator<char>(second_stream)),
      std::istreambuf_iterator<char>());
  EXPECT_EQ(first_bytes, second_bytes);
  EXPECT_FALSE(first_bytes.empty());
}

TEST(CacheStoreCompact, MissingDirectoryThrows) {
  Scratch scratch;
  EXPECT_THROW(
      (void)rv::engine::compact_cache_dir(scratch.path / "absent"),
      std::runtime_error);
}

// ---------------------------------------------------------------------------
// Failpoint-armed durability pins (engine/failpoint.hpp): the
// write-fsync-rename discipline must mean a crash before the rename
// never publishes a file, and a torn write is skipped — never a crash —
// by the per-record checksum recovery.
// ---------------------------------------------------------------------------

TEST(CacheStoreFailpoints, CrashBeforeRenameLeavesNoFinalFile) {
  Scratch scratch;
  ScenarioCache cache;
  populate(small_all_family_set(), &cache);
  const fs::path file = scratch.path / "crashed.rvcache";
  // The child arms the site and crashes mid-save: the data is written
  // to the temp file but the atomic rename never runs, so the final
  // name must not exist — a concurrent warm-loader can never observe a
  // half-written published file.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    rv::engine::failpoint::arm("cache_store.save.pre_rename=crash(86)");
    rv::engine::save_cache_file(file, cache);
    _exit(0);  // unreachable when the failpoint fires
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 86);
  EXPECT_FALSE(fs::exists(file));
  // The exact same save succeeds once nothing is armed (this process
  // never armed anything), and the file round-trips in full.
  rv::engine::save_cache_file(file, cache);
  ScenarioCache loaded;
  const CacheLoadStats stats = rv::engine::load_cache_file(file, &loaded);
  EXPECT_EQ(stats.loaded, 5u);
  EXPECT_EQ(stats.bad_files, 0u);
}

TEST(CacheStoreFailpoints, TornWriteIsSkippedNeverACrash) {
  Scratch scratch;
  ScenarioCache cache;
  populate(small_all_family_set(), &cache);
  const fs::path file = scratch.path / "torn.rvcache";
  rv::engine::failpoint::arm("cache_store.save.pre_rename=torn_write(20)");
  rv::engine::save_cache_file(file, cache);
  rv::engine::failpoint::disarm_all();
  // 20 bytes keep the header but tear the first record: the loader
  // reports the damage and loads nothing — it must not crash and must
  // not fabricate entries.
  ASSERT_TRUE(fs::exists(file));
  EXPECT_EQ(fs::file_size(file), 20u);
  ScenarioCache loaded;
  const CacheLoadStats stats = rv::engine::load_cache_file(file, &loaded);
  EXPECT_EQ(stats.loaded, 0u);
  EXPECT_EQ(loaded.size(), 0u);
  // An intact save over the torn file heals it completely.
  rv::engine::save_cache_file(file, cache);
  ScenarioCache healed;
  EXPECT_EQ(rv::engine::load_cache_file(file, &healed).loaded, 5u);
}

}  // namespace
