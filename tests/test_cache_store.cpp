// Tests for the persistent ScenarioCache store (engine/cache_store):
// exact payload round-trips for all five outcome families, deterministic
// file bytes, corruption tolerance (truncated files, flipped bytes, bad
// headers — skip, never crash), merge semantics, and cross-run hit
// counting through a file (the single-machine model of the cross-process
// hand-off rv_batch performs).

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "engine/cache_store.hpp"
#include "engine/failpoint.hpp"
#include "engine/families.hpp"
#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"

namespace {

namespace fs = std::filesystem;
using rv::engine::CacheLoadStats;
using rv::engine::ScenarioCache;

/// Bit-exact double comparison: NaNs with equal payloads compare equal,
/// +0.0 and -0.0 do not — exactly what "replayed outcomes emit the same
/// bytes" requires.
bool same_bits(double a, double b) {
  std::uint64_t ab = 0, bb = 0;
  std::memcpy(&ab, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  return ab == bb;
}

/// Fresh scratch directory per test, removed on destruction.
struct Scratch {
  fs::path path;
  Scratch() {
    path = fs::temp_directory_path() / "rv_cache_store_XXXXXX";
    std::string buffer = path.string();
    EXPECT_NE(mkdtemp(buffer.data()), nullptr);
    path = buffer;
  }
  ~Scratch() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

rv::sim::SimResult sample_sim_result() {
  rv::sim::SimResult sim;
  sim.met = true;
  sim.time = 12.3456789012345;
  sim.distance = 0.05;
  sim.min_distance = 0.0125;
  sim.min_distance_time = 11.5;
  sim.position1 = {1.25, -2.5};
  sim.position2 = {1.3, -2.45};
  sim.evals = 421;
  sim.segments = 97;
  return sim;
}

/// Serialize → deserialize under `key` and require success.
ScenarioCache::Entry round_trip(const std::string& key,
                                const ScenarioCache::Entry& entry) {
  const std::string payload = rv::engine::serialize_entry(key, entry);
  ScenarioCache::Entry decoded;
  EXPECT_TRUE(rv::engine::deserialize_entry(key, payload, &decoded))
      << "family byte: " << key[0];
  return decoded;
}

TEST(CacheStoreSerialization, RendezvousOutcomeRoundTripsExactly) {
  ScenarioCache::Entry entry;
  entry.outcome.sim = sample_sim_result();
  entry.outcome.feasibility = rv::rendezvous::classify(
      rv::geom::reference_attributes());
  entry.outcome.initial_distance = -0.0;  // sign must survive
  entry.outcome.algorithm_name = "algorithm7";

  const ScenarioCache::Entry decoded = round_trip("R-key", entry);
  EXPECT_EQ(decoded.outcome.sim.met, entry.outcome.sim.met);
  EXPECT_TRUE(same_bits(decoded.outcome.sim.time, entry.outcome.sim.time));
  EXPECT_TRUE(same_bits(decoded.outcome.sim.position2.y,
                        entry.outcome.sim.position2.y));
  EXPECT_EQ(decoded.outcome.sim.evals, entry.outcome.sim.evals);
  EXPECT_EQ(decoded.outcome.sim.segments, entry.outcome.sim.segments);
  EXPECT_EQ(decoded.outcome.feasibility, entry.outcome.feasibility);
  EXPECT_TRUE(same_bits(decoded.outcome.initial_distance, -0.0));
  EXPECT_EQ(decoded.outcome.algorithm_name, "algorithm7");
}

TEST(CacheStoreSerialization, SearchOutcomeRoundTripsExactly) {
  ScenarioCache::Entry entry;
  entry.search_outcome.found = 7;
  entry.search_outcome.missed = 1;
  entry.search_outcome.complete = false;
  entry.search_outcome.worst_time = 123.456;
  entry.search_outcome.mean_time = 98.7;
  entry.search_outcome.worst_angle = -2.7488935718910690836;
  entry.search_outcome.first_miss_angle = 0.03;
  entry.search_outcome.program_name = "algorithm4";
  entry.search_outcome.evals = 123456789ull;
  entry.search_outcome.segments = 987654321ull;

  const ScenarioCache::Entry decoded = round_trip("S-key", entry);
  EXPECT_EQ(decoded.search_outcome.found, 7);
  EXPECT_EQ(decoded.search_outcome.missed, 1);
  EXPECT_FALSE(decoded.search_outcome.complete);
  EXPECT_TRUE(same_bits(decoded.search_outcome.worst_angle,
                        entry.search_outcome.worst_angle));
  EXPECT_EQ(decoded.search_outcome.program_name, "algorithm4");
  EXPECT_EQ(decoded.search_outcome.evals, entry.search_outcome.evals);
  EXPECT_EQ(decoded.search_outcome.segments, entry.search_outcome.segments);
}

TEST(CacheStoreSerialization, GatherOutcomeRoundTripsExactly) {
  ScenarioCache::Entry entry;
  entry.gather_outcome.contact.achieved = true;
  entry.gather_outcome.contact.time = 17.25;
  entry.gather_outcome.contact.pair_i = 0;
  entry.gather_outcome.contact.pair_j = 2;
  entry.gather_outcome.contact.max_pairwise = 3.5;
  entry.gather_outcome.contact.min_max_pairwise = 0.19;
  entry.gather_outcome.contact.evals = 77;
  entry.gather_outcome.contact.segments = 31;
  entry.gather_outcome.gathered.achieved = false;
  entry.gather_outcome.gathered.time = 2e5;
  entry.gather_outcome.gathered.pair_i = -1;
  entry.gather_outcome.gathered.pair_j = -1;
  entry.gather_outcome.gathered.min_max_pairwise =
      std::numeric_limits<double>::infinity();  // non-finite must survive

  const ScenarioCache::Entry decoded = round_trip("G-key", entry);
  EXPECT_TRUE(decoded.gather_outcome.contact.achieved);
  EXPECT_EQ(decoded.gather_outcome.contact.pair_j, 2);
  EXPECT_TRUE(same_bits(decoded.gather_outcome.contact.min_max_pairwise,
                        0.19));
  EXPECT_FALSE(decoded.gather_outcome.gathered.achieved);
  EXPECT_EQ(decoded.gather_outcome.gathered.pair_i, -1);
  EXPECT_TRUE(std::isinf(decoded.gather_outcome.gathered.min_max_pairwise));
}

TEST(CacheStoreSerialization, LinearOutcomeRoundTripsExactly) {
  ScenarioCache::Entry entry;
  entry.linear_outcome.feasible = true;
  entry.linear_outcome.sim = sample_sim_result();

  const ScenarioCache::Entry decoded = round_trip("L-key", entry);
  EXPECT_TRUE(decoded.linear_outcome.feasible);
  EXPECT_TRUE(same_bits(decoded.linear_outcome.sim.min_distance_time,
                        entry.linear_outcome.sim.min_distance_time));
  EXPECT_EQ(decoded.linear_outcome.sim.segments,
            entry.linear_outcome.sim.segments);
}

TEST(CacheStoreSerialization, CoverageOutcomeRoundTripsExactly) {
  ScenarioCache::Entry entry;
  entry.coverage_outcome.series = {
      {0.0, 0.0, 0.0}, {10.0, 0.5, 3.53}, {20.0, 0.995, 7.03}};
  entry.coverage_outcome.program_name = "square-spiral";
  entry.coverage_outcome.t50 = 10.0;
  entry.coverage_outcome.t99 = 20.0;
  entry.coverage_outcome.final_fraction = 0.995;
  entry.coverage_outcome.covered_area = 7.03;

  const ScenarioCache::Entry decoded = round_trip("C-key", entry);
  ASSERT_EQ(decoded.coverage_outcome.series.size(), 3u);
  EXPECT_TRUE(same_bits(decoded.coverage_outcome.series[1].fraction, 0.5));
  EXPECT_TRUE(same_bits(decoded.coverage_outcome.series[2].covered_area,
                        7.03));
  EXPECT_EQ(decoded.coverage_outcome.program_name, "square-spiral");
  EXPECT_TRUE(same_bits(decoded.coverage_outcome.t99, 20.0));
}

TEST(CacheStoreSerialization, RejectsUnknownFamilyAndTrailingBytes) {
  ScenarioCache::Entry entry;
  EXPECT_THROW((void)rv::engine::serialize_entry("", entry),
               std::invalid_argument);
  EXPECT_THROW((void)rv::engine::serialize_entry("Xkey", entry),
               std::invalid_argument);

  ScenarioCache::Entry decoded;
  EXPECT_FALSE(rv::engine::deserialize_entry("Xkey", "abc", &decoded));
  // A valid payload with appended garbage is corrupt, not "close enough".
  std::string payload = rv::engine::serialize_entry("L-key", entry);
  payload += '\0';
  EXPECT_FALSE(rv::engine::deserialize_entry("L-key", payload, &decoded));
  // A truncated payload is corrupt too.
  payload = rv::engine::serialize_entry("L-key", entry);
  payload.pop_back();
  EXPECT_FALSE(rv::engine::deserialize_entry("L-key", payload, &decoded));
}

TEST(CacheStoreSerialization, RejectsCoverageCountLargerThanPayload) {
  // A crafted 'C' payload claiming a huge series count must be
  // rejected *before* any allocation: the count is only believable if
  // the remaining bytes can pay for it (3 doubles per point).
  std::string payload;
  const std::uint32_t huge = 0x0FFFFFFF;
  payload.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  payload.append(64, '\0');  // far fewer than huge * 24 bytes
  ScenarioCache::Entry decoded;
  EXPECT_FALSE(rv::engine::deserialize_entry("C-key", payload, &decoded));
  EXPECT_TRUE(decoded.coverage_outcome.series.empty());
}

/// A small all-family scenario set, used to populate caches with real
/// computed outcomes.
rv::engine::ScenarioSet small_all_family_set() {
  rv::engine::ScenarioSet set;
  rv::rendezvous::Scenario scenario;
  scenario.attrs.speed = 1.5;
  scenario.visibility = 0.25;
  scenario.max_time = 1e3;
  set.add(scenario);

  rv::engine::SearchCell search;
  search.angles = 3;
  search.distance = 1.0;
  search.visibility = 0.25;
  search.max_time = 1e3;
  set.add_search(search);

  rv::engine::GatherCell gather;
  rv::geom::RobotAttributes fast = rv::geom::reference_attributes();
  fast.speed = 2.0;
  gather.fleet = {rv::geom::reference_attributes(), fast};
  gather.visibility = 0.2;
  gather.contact_max_time = 1e3;
  gather.gather_max_time = 1e3;
  set.add_gather(gather);

  rv::engine::LinearCell linear;
  linear.mode = rv::engine::LinearMode::kZigZagSearch;
  linear.target = 1.0;
  linear.visibility = 0.01;
  linear.max_time = 1e3;
  set.add_linear(linear);

  rv::engine::CoverageCell coverage;
  coverage.disk_radius = 0.5;
  coverage.visibility = 0.1;
  coverage.cell = 0.05;
  coverage.checkpoints = 4;
  coverage.horizon = 50.0;
  set.add_coverage(coverage);
  return set;
}

/// Runs `set` with a fresh cache attached; returns the cache populated
/// with the computed outcomes.
void populate(const rv::engine::ScenarioSet& set, ScenarioCache* cache,
              std::string* csv = nullptr) {
  rv::engine::RunnerOptions options;
  options.threads = 1;
  options.cache = cache;
  const rv::engine::ResultSet results = rv::engine::run_scenarios(set, options);
  EXPECT_EQ(results.cache_stats().misses, results.size());
  if (csv != nullptr) {
    *csv = results.filtered(rv::engine::Family::kSearch).to_csv();
  }
}

TEST(CacheStoreFile, SaveLoadRoundTripsAllFamilies) {
  Scratch scratch;
  ScenarioCache cache;
  populate(small_all_family_set(), &cache);
  ASSERT_EQ(cache.size(), 5u);  // one entry per family

  const fs::path path = scratch.path / "all.rvcache";
  rv::engine::save_cache_file(path, cache);

  ScenarioCache loaded;
  const CacheLoadStats stats = rv::engine::load_cache_file(path, &loaded);
  EXPECT_EQ(stats.files, 1u);
  EXPECT_EQ(stats.loaded, 5u);
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_EQ(stats.bad_files, 0u);

  // The loaded cache must be *indistinguishable* from the original:
  // same keys, bitwise-same payloads.
  const auto want = cache.snapshot();
  const auto got = loaded.snapshot();
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].first, got[i].first);
    EXPECT_EQ(rv::engine::serialize_entry(want[i].first, want[i].second),
              rv::engine::serialize_entry(got[i].first, got[i].second));
  }
}

TEST(CacheStoreFile, SavedBytesAreDeterministic) {
  Scratch scratch;
  ScenarioCache cache;
  populate(small_all_family_set(), &cache);

  const fs::path a = scratch.path / "a.rvcache";
  const fs::path b = scratch.path / "b.rvcache";
  rv::engine::save_cache_file(a, cache);
  // A cache rebuilt through a different path (load, not compute) must
  // serialize to the same bytes — snapshot order is key order, not
  // insertion order.
  ScenarioCache reloaded;
  (void)rv::engine::load_cache_file(a, &reloaded);
  rv::engine::save_cache_file(b, reloaded);
  std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
  std::string sa((std::istreambuf_iterator<char>(fa)),
                 std::istreambuf_iterator<char>());
  std::string sb((std::istreambuf_iterator<char>(fb)),
                 std::istreambuf_iterator<char>());
  EXPECT_EQ(sa, sb);
  EXPECT_FALSE(sa.empty());
}

TEST(CacheStoreFile, WarmRunFromDiskHitsEverythingAndEmitsSameBytes) {
  Scratch scratch;
  // "Process A": compute, persist.
  ScenarioCache first;
  std::string cold_csv;
  populate(small_all_family_set(), &first, &cold_csv);
  const fs::path path = scratch.path / "a.rvcache";
  rv::engine::save_cache_file(path, first);

  // "Process B": a fresh cache warm-loaded from A's file.  Every item
  // replays (cross-process hit counting) and emission is byte-identical.
  ScenarioCache second;
  (void)rv::engine::load_cache_file(path, &second);
  rv::engine::RunnerOptions options;
  options.threads = 1;
  options.cache = &second;
  const rv::engine::ResultSet warm =
      rv::engine::run_scenarios(small_all_family_set(), options);
  EXPECT_EQ(warm.cache_stats().hits, warm.size());
  EXPECT_EQ(warm.cache_stats().misses, 0u);
  EXPECT_EQ(warm.cache_stats().uncacheable, 0u);
  EXPECT_EQ(warm.filtered(rv::engine::Family::kSearch).to_csv(), cold_csv);
}

TEST(CacheStoreFile, MissingFileAndBadHeaderAreReportedNotThrown) {
  Scratch scratch;
  ScenarioCache cache;
  CacheLoadStats stats =
      rv::engine::load_cache_file(scratch.path / "absent.rvcache", &cache);
  EXPECT_EQ(stats.bad_files, 1u);
  EXPECT_EQ(stats.loaded, 0u);

  const fs::path garbage = scratch.path / "garbage.rvcache";
  std::ofstream(garbage, std::ios::binary) << "not a cache file at all";
  stats = rv::engine::load_cache_file(garbage, &cache);
  EXPECT_EQ(stats.bad_files, 1u);
  EXPECT_EQ(stats.loaded, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CacheStoreFile, RejectsFilesFromAnotherEngineEpoch) {
  // Outcomes persisted by a different engine generation must not
  // replay as current results: a flipped epoch field makes the whole
  // file a bad_file (recomputed on the next run), not a cache hit.
  Scratch scratch;
  ScenarioCache cache;
  populate(small_all_family_set(), &cache);
  const fs::path path = scratch.path / "epoch.rvcache";
  rv::engine::save_cache_file(path, cache);

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  bytes[8] = static_cast<char>(bytes[8] ^ 0xFF);  // epoch lives at offset 8
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;

  ScenarioCache loaded;
  const CacheLoadStats stats = rv::engine::load_cache_file(path, &loaded);
  EXPECT_EQ(stats.bad_files, 1u);
  EXPECT_EQ(stats.loaded, 0u);
  EXPECT_EQ(loaded.size(), 0u);
}

TEST(CacheStoreFile, TruncatedFileLoadsThePrefixAndNeverCrashes) {
  Scratch scratch;
  ScenarioCache cache;
  populate(small_all_family_set(), &cache);
  const fs::path path = scratch.path / "full.rvcache";
  rv::engine::save_cache_file(path, cache);
  const auto full_size = fs::file_size(path);

  // Chop the file at every suffix length down to below the header: the
  // loader must never crash and never load more than it can verify.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_EQ(bytes.size(), full_size);
  for (const std::size_t keep :
       {full_size - 3, full_size / 2, full_size / 4, std::size_t{13},
        std::size_t{9}, std::size_t{3}}) {
    const fs::path cut = scratch.path / "cut.rvcache";
    std::ofstream(cut, std::ios::binary) << bytes.substr(0, keep);
    ScenarioCache partial;
    const CacheLoadStats stats = rv::engine::load_cache_file(cut, &partial);
    if (keep < 12) {  // header: 8-byte magic + u32 engine epoch
      EXPECT_EQ(stats.bad_files, 1u) << "keep=" << keep;
    } else {
      EXPECT_LE(partial.size(), cache.size()) << "keep=" << keep;
      if (keep < full_size) {
        EXPECT_GE(stats.skipped, 1u) << "keep=" << keep;
      }
    }
  }
}

TEST(CacheStoreFile, CorruptRecordIsSkippedNeighboursSurvive) {
  Scratch scratch;
  ScenarioCache cache;
  populate(small_all_family_set(), &cache);
  const fs::path path = scratch.path / "flip.rvcache";
  rv::engine::save_cache_file(path, cache);

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  // Flip one byte in the middle of the second record's body (past the
  // header and first record): its checksum fails, the reader resyncs,
  // and every other record still loads.
  const std::size_t target = bytes.size() / 2;
  bytes[target] = static_cast<char>(bytes[target] ^ 0x5A);
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;

  ScenarioCache damaged;
  const CacheLoadStats stats = rv::engine::load_cache_file(path, &damaged);
  EXPECT_GE(stats.skipped, 1u);
  EXPECT_GE(stats.loaded, cache.size() - 2);
  EXPECT_LT(stats.loaded, cache.size());
}

TEST(CacheStoreFile, MalformedLengthRecordIsRejectedBeforeAllocation) {
  // A record header may CLAIM any key/payload size; the loader must
  // bounds-check the claim against the remaining bytes (and the
  // absolute kMaxFieldSize cap) *before* allocating or reading — a
  // corrupt length field is garbage, not an allocation request.  This
  // pins the check the ASan leg of the sanitizer matrix watches: if
  // the loader ever trusts the claimed length first, these inputs
  // become huge allocations / out-of-bounds reads instead of a clean
  // `skipped` count.
  Scratch scratch;
  ScenarioCache cache;
  populate(small_all_family_set(), &cache);
  const fs::path path = scratch.path / "evil.rvcache";
  rv::engine::save_cache_file(path, cache);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), 12u);

  const auto u32 = [](std::uint32_t v) {
    std::string out(4, '\0');
    std::memcpy(out.data(), &v, 4);
    return out;
  };
  constexpr std::uint32_t kMagic = 0x52435245;  // "ERCR"
  struct Claim {
    const char* what;
    std::uint32_t key_size;
    std::uint32_t payload_size;
  };
  const Claim claims[] = {
      // Within the per-field cap but far beyond the file: only the
      // remaining-bytes check stands between this and a ~512 MiB read.
      {"sizes beyond the file", (1u << 28) - 16, (1u << 28) - 16},
      // Beyond the per-field cap: must be rejected even though the
      // u32 arithmetic would not overflow size_t.
      {"key_size above kMaxFieldSize", 0xFFFFFFFFu, 8},
      {"payload_size above kMaxFieldSize", 8, 0xFFFFFFFFu},
  };
  for (const Claim& claim : claims) {
    // Splice the malicious record header between the file header and
    // the valid records.
    const std::string evil = bytes.substr(0, 12) + u32(kMagic) +
                             u32(claim.key_size) + u32(claim.payload_size) +
                             bytes.substr(12);
    const fs::path evil_path = scratch.path / "spliced.rvcache";
    std::ofstream(evil_path, std::ios::binary | std::ios::trunc) << evil;
    ScenarioCache out;
    const CacheLoadStats stats = rv::engine::load_cache_file(evil_path, &out);
    EXPECT_EQ(stats.files, 1u) << claim.what;
    EXPECT_EQ(stats.skipped, 1u) << claim.what;
    // The reader resynchronises on the next record magic, so every
    // genuine record after the lie still loads.
    EXPECT_EQ(stats.loaded, cache.size()) << claim.what;
    EXPECT_EQ(out.size(), cache.size()) << claim.what;
  }
}

TEST(CacheStoreFile, MergeUnionsInputsFirstWriterWins) {
  Scratch scratch;
  // Two overlapping caches: {all 5 families} and {search only, but a
  // different cell}.
  ScenarioCache a;
  populate(small_all_family_set(), &a);

  rv::engine::ScenarioSet extra;
  rv::engine::SearchCell other;
  other.angles = 2;
  other.distance = 2.0;
  other.visibility = 0.5;
  other.max_time = 1e3;
  extra.add_search(other);
  ScenarioCache b;
  populate(small_all_family_set(), &b);  // duplicates of a
  populate(extra, &b);                   // plus one new key

  const fs::path file_a = scratch.path / "a.rvcache";
  const fs::path file_b = scratch.path / "b.rvcache";
  const fs::path merged = scratch.path / "merged.rvcache";
  rv::engine::save_cache_file(file_a, a);
  rv::engine::save_cache_file(file_b, b);

  const CacheLoadStats stats =
      rv::engine::merge_cache_files({file_a, file_b}, merged);
  EXPECT_EQ(stats.files, 2u);
  EXPECT_EQ(stats.loaded, 6u);      // 5 from a + 1 new from b
  EXPECT_EQ(stats.duplicates, 5u);  // b's copies of a's keys

  ScenarioCache out;
  const CacheLoadStats merged_stats =
      rv::engine::load_cache_file(merged, &out);
  EXPECT_EQ(merged_stats.loaded, 6u);
  EXPECT_EQ(out.size(), 6u);
}

TEST(CacheStoreDir, LoadsEveryCacheFileInNameOrder) {
  Scratch scratch;
  ScenarioCache cache;
  populate(small_all_family_set(), &cache);
  rv::engine::save_cache_file(scratch.path / "shard-0.rvcache", cache);
  rv::engine::save_cache_file(scratch.path / "shard-1.rvcache", cache);
  std::ofstream(scratch.path / "notes.txt") << "ignored";

  ScenarioCache loaded;
  const CacheLoadStats stats =
      rv::engine::load_cache_dir(scratch.path, &loaded);
  EXPECT_EQ(stats.files, 2u);
  EXPECT_EQ(stats.loaded, 5u);
  EXPECT_EQ(stats.duplicates, 5u);
  EXPECT_EQ(loaded.size(), 5u);

  // A missing directory is simply empty.
  ScenarioCache empty;
  const CacheLoadStats none =
      rv::engine::load_cache_dir(scratch.path / "absent", &empty);
  EXPECT_EQ(none.files, 0u);
  EXPECT_EQ(empty.size(), 0u);
}

// ---------------------------------------------------------------------------
// Failpoint-armed durability pins (engine/failpoint.hpp): the
// write-fsync-rename discipline must mean a crash before the rename
// never publishes a file, and a torn write is skipped — never a crash —
// by the per-record checksum recovery.
// ---------------------------------------------------------------------------

TEST(CacheStoreFailpoints, CrashBeforeRenameLeavesNoFinalFile) {
  Scratch scratch;
  ScenarioCache cache;
  populate(small_all_family_set(), &cache);
  const fs::path file = scratch.path / "crashed.rvcache";
  // The child arms the site and crashes mid-save: the data is written
  // to the temp file but the atomic rename never runs, so the final
  // name must not exist — a concurrent warm-loader can never observe a
  // half-written published file.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    rv::engine::failpoint::arm("cache_store.save.pre_rename=crash(86)");
    rv::engine::save_cache_file(file, cache);
    _exit(0);  // unreachable when the failpoint fires
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 86);
  EXPECT_FALSE(fs::exists(file));
  // The exact same save succeeds once nothing is armed (this process
  // never armed anything), and the file round-trips in full.
  rv::engine::save_cache_file(file, cache);
  ScenarioCache loaded;
  const CacheLoadStats stats = rv::engine::load_cache_file(file, &loaded);
  EXPECT_EQ(stats.loaded, 5u);
  EXPECT_EQ(stats.bad_files, 0u);
}

TEST(CacheStoreFailpoints, TornWriteIsSkippedNeverACrash) {
  Scratch scratch;
  ScenarioCache cache;
  populate(small_all_family_set(), &cache);
  const fs::path file = scratch.path / "torn.rvcache";
  rv::engine::failpoint::arm("cache_store.save.pre_rename=torn_write(20)");
  rv::engine::save_cache_file(file, cache);
  rv::engine::failpoint::disarm_all();
  // 20 bytes keep the header but tear the first record: the loader
  // reports the damage and loads nothing — it must not crash and must
  // not fabricate entries.
  ASSERT_TRUE(fs::exists(file));
  EXPECT_EQ(fs::file_size(file), 20u);
  ScenarioCache loaded;
  const CacheLoadStats stats = rv::engine::load_cache_file(file, &loaded);
  EXPECT_EQ(stats.loaded, 0u);
  EXPECT_EQ(loaded.size(), 0u);
  // An intact save over the torn file heals it completely.
  rv::engine::save_cache_file(file, cache);
  ScenarioCache healed;
  EXPECT_EQ(rv::engine::load_cache_file(file, &healed).loaded, 5u);
}

}  // namespace
