// Tests for the N-robot gathering extension: certified multi-robot
// sweeps, both event modes, validation, and consistency with the
// two-robot simulator.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "gather/multi_simulator.hpp"
#include "mathx/constants.hpp"
#include "rendezvous/algorithm7.hpp"
#include "sim/simulator.hpp"
#include "traj/path.hpp"
#include "traj/program.hpp"

namespace {

using namespace rv::gather;
using rv::geom::RobotAttributes;
using rv::geom::Vec2;
using rv::sim::RobotSpec;
using rv::traj::Path;
using rv::traj::PathProgram;
using rv::traj::StationaryProgram;

std::shared_ptr<rv::traj::Program> line_program(const Vec2& to) {
  Path p;
  p.line_to(to);
  return std::make_shared<PathProgram>(p, "line");
}

GatherOptions opts_with(double r, GatherMode mode, double horizon = 1e5) {
  GatherOptions o;
  o.sweep.visibility = r;
  o.mode = mode;
  o.sweep.max_time = horizon;
  return o;
}

TEST(MultiRobot, RequiresAtLeastTwoRobots) {
  std::vector<RobotSpec> one;
  one.push_back({std::make_shared<StationaryProgram>(), RobotAttributes{},
                 Vec2{0.0, 0.0}});
  EXPECT_THROW(MultiRobotSimulator(std::move(one), GatherOptions{}),
               std::invalid_argument);
}

TEST(MultiRobot, RejectsNullProgramAndBadOptions) {
  auto mk = [] {
    return RobotSpec{std::make_shared<StationaryProgram>(), RobotAttributes{},
                     Vec2{0.0, 0.0}};
  };
  std::vector<RobotSpec> robots;
  robots.push_back(mk());
  robots.push_back({nullptr, RobotAttributes{}, Vec2{1.0, 0.0}});
  EXPECT_THROW(MultiRobotSimulator(std::move(robots), GatherOptions{}),
               std::invalid_argument);
  std::vector<RobotSpec> ok;
  ok.push_back(mk());
  ok.push_back(mk());
  GatherOptions bad;
  bad.sweep.visibility = 0.0;
  EXPECT_THROW(MultiRobotSimulator(std::move(ok), bad), std::invalid_argument);
}

TEST(MultiRobot, TwoRobotFirstContactMatchesPairSimulator) {
  // Head-on approach: multi-robot first contact must agree with the
  // dedicated two-robot sweep.
  auto build_specs = [&] {
    std::vector<RobotSpec> robots;
    robots.push_back({line_program({100.0, 0.0}), RobotAttributes{},
                      Vec2{0.0, 0.0}});
    robots.push_back({line_program({-100.0, 0.0}), RobotAttributes{},
                      Vec2{10.0, 0.0}});
    return robots;
  };
  MultiRobotSimulator multi(build_specs(),
                            opts_with(2.0, GatherMode::kFirstContact));
  const GatherResult res = multi.run();
  ASSERT_TRUE(res.achieved);
  EXPECT_NEAR(res.time, 4.0, 1e-6);
  EXPECT_EQ(res.pair_i, 0);
  EXPECT_EQ(res.pair_j, 1);
}

TEST(MultiRobot, ThreeRobotsFirstContactPicksClosestPair) {
  // Robots 0 and 1 converge quickly; robot 2 is far away and idle.
  std::vector<RobotSpec> robots;
  robots.push_back({line_program({100.0, 0.0}), RobotAttributes{},
                    Vec2{0.0, 0.0}});
  robots.push_back({line_program({-100.0, 0.0}), RobotAttributes{},
                    Vec2{6.0, 0.0}});
  robots.push_back({std::make_shared<StationaryProgram>(), RobotAttributes{},
                    Vec2{0.0, 500.0}});
  MultiRobotSimulator sim(std::move(robots),
                          opts_with(1.0, GatherMode::kFirstContact));
  const GatherResult res = sim.run();
  ASSERT_TRUE(res.achieved);
  EXPECT_NEAR(res.time, 2.5, 1e-6);
  EXPECT_EQ(res.pair_i, 0);
  EXPECT_EQ(res.pair_j, 1);
}

TEST(MultiRobot, AllPairsRequiresEveryPairClose) {
  // Three robots converging on the origin from a ring of radius 10:
  // all pairwise distances shrink together; gathering when the *max*
  // pair distance reaches r.
  std::vector<RobotSpec> robots;
  for (int i = 0; i < 3; ++i) {
    const Vec2 origin =
        rv::geom::polar(10.0, 2.0 * rv::mathx::kPi * i / 3.0);
    Path p;
    p.line_to({-origin.x, -origin.y});  // local line through the origin
    robots.push_back({std::make_shared<PathProgram>(p, "inbound"),
                      RobotAttributes{}, origin});
  }
  MultiRobotSimulator sim(std::move(robots),
                          opts_with(0.5, GatherMode::kAllPairsGathered));
  const GatherResult res = sim.run();
  ASSERT_TRUE(res.achieved);
  // Pairwise distance of ring robots at radius rho is rho·√3; they
  // reach the origin at t = 10 moving at speed 1, so max pair = 0.5
  // when rho = 0.5/√3, i.e. t = 10 − 0.5/√3.
  EXPECT_NEAR(res.time, 10.0 - 0.5 / std::sqrt(3.0), 1e-6);
  EXPECT_LE(res.max_pairwise, 0.5 + 1e-6);
}

TEST(MultiRobot, StationaryFleetSkipsToHorizonCheaply) {
  std::vector<RobotSpec> robots;
  for (int i = 0; i < 4; ++i) {
    robots.push_back({std::make_shared<StationaryProgram>(), RobotAttributes{},
                      rv::geom::polar(5.0, 1.3 * i)});
  }
  MultiRobotSimulator sim(std::move(robots),
                          opts_with(0.1, GatherMode::kFirstContact, 1e4));
  const GatherResult res = sim.run();
  EXPECT_FALSE(res.achieved);
  EXPECT_LE(res.evals, 200u);
}

TEST(MultiRobot, IdenticalFleetSeparationsInvariant) {
  // Identical robots running the same program: all pairwise distances
  // constant forever (the N-robot generalisation of the Theorem 4
  // 'only if' for identical attributes).
  std::vector<RobotAttributes> attrs(3);
  std::vector<Vec2> origins;
  for (int i = 0; i < 3; ++i) {
    origins.push_back(rv::geom::polar(1.0, 2.0 * rv::mathx::kPi * i / 3.0));
  }
  const auto res = simulate_gathering(
      [] { return rv::rendezvous::make_rendezvous_program(); }, attrs, origins,
      opts_with(0.2, GatherMode::kAllPairsGathered, 2e3));
  EXPECT_FALSE(res.achieved);
  // Ring of radius 1: every pair at distance √3, forever.
  EXPECT_NEAR(res.min_max_pairwise, std::sqrt(3.0), 1e-9);
}

TEST(MultiRobot, PairwiseDistinctSpeedsReachFirstContact) {
  std::vector<RobotAttributes> attrs(3);
  attrs[1].speed = 1.5;
  attrs[2].speed = 2.0;
  std::vector<Vec2> origins;
  for (int i = 0; i < 3; ++i) {
    origins.push_back(rv::geom::polar(1.0, 2.0 * rv::mathx::kPi * i / 3.0));
  }
  const auto res = simulate_gathering(
      [] { return rv::rendezvous::make_rendezvous_program(); }, attrs, origins,
      opts_with(0.2, GatherMode::kFirstContact, 1e6));
  EXPECT_TRUE(res.achieved);
  EXPECT_GE(res.pair_i, 0);
  EXPECT_GT(res.pair_j, res.pair_i);
}

TEST(MultiRobot, FactoryValidation) {
  EXPECT_THROW((void)simulate_gathering({}, {}, {}, GatherOptions{}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)simulate_gathering(
          [] { return rv::rendezvous::make_rendezvous_program(); },
          std::vector<RobotAttributes>(2), std::vector<Vec2>(3),
          GatherOptions{}),
      std::invalid_argument);
}

}  // namespace
