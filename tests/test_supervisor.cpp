// Shard supervisor (engine/supervisor.hpp): success paths, retry on
// failure, bounded attempt budgets, deadline kills, and the coverage
// report's missing-index arithmetic.

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/supervisor.hpp"

namespace fs = std::filesystem;
using rv::engine::AttemptOutcome;
using rv::engine::ShardStatus;
using rv::engine::SupervisorOptions;
using rv::engine::SupervisorReport;
using rv::engine::supervise_shards;

namespace {

/// mkdtemp-backed scratch directory (children and the parent share it
/// through the filesystem — the only channel that survives fork).
class Scratch {
 public:
  Scratch() {
    std::string templ =
        (fs::temp_directory_path() / "rv_supervisor_XXXXXX").string();
    dir_ = ::mkdtemp(templ.data());
  }
  ~Scratch() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] fs::path path(const std::string& name) const {
    return fs::path(dir_) / name;
  }

 private:
  std::string dir_;
};

/// Fast-retry options for tests: real exponential backoff would make
/// the suite crawl.
SupervisorOptions fast(std::size_t retries, double timeout_sec = 0.0) {
  SupervisorOptions options;
  options.retries = retries;
  options.timeout_sec = timeout_sec;
  options.backoff_ms = 1;
  return options;
}

TEST(SupervisorTest, AllShardsSucceedFirstTry) {
  const SupervisorReport report =
      supervise_shards(4, [](std::size_t) { return 0; }, fast(0));
  EXPECT_TRUE(report.complete());
  EXPECT_FALSE(report.any_failures());
  EXPECT_TRUE(report.failed_shards().empty());
  ASSERT_EQ(report.shards.size(), 4u);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(report.shards[s].shard, s);
    EXPECT_TRUE(report.shards[s].succeeded);
    ASSERT_EQ(report.shards[s].attempts.size(), 1u);
    EXPECT_EQ(report.shards[s].attempts[0].outcome, AttemptOutcome::kSuccess);
    EXPECT_EQ(report.shards[s].attempts[0].code, 0);
  }
}

TEST(SupervisorTest, FailedShardIsRetriedAndRecovers) {
  Scratch scratch;
  // Shard 1 fails until its marker file exists; the first attempt
  // creates it, so attempt 2 succeeds.  Only shard 1 may retry.
  const auto child = [&](std::size_t s) -> int {
    if (s != 1) return 0;
    const fs::path marker = scratch.path("attempted");
    if (fs::exists(marker)) return 0;
    std::fclose(std::fopen(marker.string().c_str(), "w"));
    return 9;
  };
  const SupervisorReport report = supervise_shards(3, child, fast(2));
  EXPECT_TRUE(report.complete());
  EXPECT_TRUE(report.any_failures());
  EXPECT_EQ(report.shards[0].attempts.size(), 1u);
  ASSERT_EQ(report.shards[1].attempts.size(), 2u);
  EXPECT_EQ(report.shards[1].attempts[0].outcome,
            AttemptOutcome::kExitFailure);
  EXPECT_EQ(report.shards[1].attempts[0].code, 9);
  EXPECT_EQ(report.shards[1].attempts[1].outcome, AttemptOutcome::kSuccess);
  EXPECT_EQ(report.shards[2].attempts.size(), 1u);
}

TEST(SupervisorTest, ExhaustedRetriesReportFailure) {
  const SupervisorReport report = supervise_shards(
      3, [](std::size_t s) { return s == 2 ? 9 : 0; }, fast(2));
  EXPECT_FALSE(report.complete());
  EXPECT_EQ(report.failed_shards(), std::vector<std::size_t>{2});
  // retries=2 means exactly 3 attempts, all nonzero exits.
  ASSERT_EQ(report.shards[2].attempts.size(), 3u);
  for (const auto& attempt : report.shards[2].attempts) {
    EXPECT_EQ(attempt.outcome, AttemptOutcome::kExitFailure);
    EXPECT_EQ(attempt.code, 9);
  }
  // The table names every attempt.
  const std::string table = report.table();
  EXPECT_NE(table.find("shard  attempt  outcome  code"), std::string::npos);
  EXPECT_NE(table.find("exit"), std::string::npos);
}

TEST(SupervisorTest, DeadlineKillsHungShardAndRetrySucceeds) {
  Scratch scratch;
  // Shard 0 hangs on its first attempt (far past the 0.2 s deadline)
  // and returns promptly once the marker exists.
  const auto child = [&](std::size_t s) -> int {
    if (s != 0) return 0;
    const fs::path marker = scratch.path("hung");
    if (fs::exists(marker)) return 0;
    std::fclose(std::fopen(marker.string().c_str(), "w"));
    std::this_thread::sleep_for(std::chrono::seconds(30));
    return 0;
  };
  const SupervisorReport report = supervise_shards(2, child, fast(1, 0.2));
  EXPECT_TRUE(report.complete());
  ASSERT_EQ(report.shards[0].attempts.size(), 2u);
  EXPECT_EQ(report.shards[0].attempts[0].outcome, AttemptOutcome::kTimeout);
  EXPECT_EQ(report.shards[0].attempts[1].outcome, AttemptOutcome::kSuccess);
  EXPECT_GE(report.shards[0].attempts[0].elapsed_ms, 150.0);
}

TEST(SupervisorTest, ChildExceptionBecomesNonzeroExit) {
  const SupervisorReport report = supervise_shards(
      1,
      [](std::size_t) -> int {
        throw std::runtime_error("deliberate child failure");
      },
      fast(0));
  EXPECT_FALSE(report.complete());
  ASSERT_EQ(report.shards[0].attempts.size(), 1u);
  EXPECT_EQ(report.shards[0].attempts[0].outcome,
            AttemptOutcome::kExitFailure);
  EXPECT_EQ(report.shards[0].attempts[0].code, 2);
}

TEST(SupervisorTest, CoverageReportNamesMissingIndices) {
  const SupervisorReport report = supervise_shards(
      3, [](std::size_t s) { return s == 1 ? 9 : 0; }, fast(0));
  EXPECT_FALSE(report.complete());
  // 10 strided items over 3 shards: shard 1 owns {1, 4, 7}.
  const std::string json = report.to_json(10);
  EXPECT_NE(json.find("\"complete\": false"), std::string::npos);
  EXPECT_NE(json.find("\"num_shards\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"total_items\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"failed_shards\": [1]"), std::string::npos);
  EXPECT_NE(json.find("\"missing_indices\": [1, 4, 7]"), std::string::npos);
  EXPECT_NE(json.find("\"outcome\": \"exit\""), std::string::npos);
}

TEST(SupervisorTest, CompleteRunEmitsEmptyFailureLists) {
  const SupervisorReport report =
      supervise_shards(2, [](std::size_t) { return 0; }, fast(0));
  const std::string json = report.to_json(5);
  EXPECT_NE(json.find("\"complete\": true"), std::string::npos);
  EXPECT_NE(json.find("\"failed_shards\": []"), std::string::npos);
  EXPECT_NE(json.find("\"missing_indices\": []"), std::string::npos);
}

}  // namespace
