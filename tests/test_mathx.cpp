// Unit and property tests for the mathx substrate: Lambert W, root
// finding, RNG, statistics, intervals, dyadic helpers, compensated
// summation.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mathx/binary.hpp"
#include "mathx/constants.hpp"
#include "mathx/interval.hpp"
#include "mathx/kahan.hpp"
#include "mathx/lambert_w.hpp"
#include "mathx/rng.hpp"
#include "mathx/roots.hpp"
#include "mathx/stats.hpp"

namespace {

using namespace rv::mathx;

// ---------------------------------------------------------------------------
// Lambert W
// ---------------------------------------------------------------------------

TEST(LambertW, KnownValues) {
  EXPECT_DOUBLE_EQ(lambert_w0(0.0), 0.0);
  EXPECT_NEAR(lambert_w0(std::exp(1.0)), 1.0, 1e-14);
  EXPECT_NEAR(lambert_w0(1.0), 0.5671432904097838, 1e-14);
  EXPECT_NEAR(lambert_w0(2.0 * std::exp(2.0)), 2.0, 1e-13);
  EXPECT_NEAR(lambert_w0(-0.2), -0.2591711018190738, 1e-12);
}

TEST(LambertW, BranchPoint) {
  const double x = -std::exp(-1.0);
  EXPECT_NEAR(lambert_w0(x), -1.0, 1e-6);
  EXPECT_NEAR(lambert_w_minus1(x), -1.0, 1e-6);
}

TEST(LambertW, DomainErrors) {
  EXPECT_THROW((void)lambert_w0(-0.4), std::domain_error);
  EXPECT_THROW((void)lambert_w_minus1(0.1), std::domain_error);
  EXPECT_THROW((void)lambert_w_minus1(-0.5), std::domain_error);
}

TEST(LambertW, MinusOneBranchKnownValue) {
  // W_{-1}(-0.1) ≈ -3.577152063957297.
  EXPECT_NEAR(lambert_w_minus1(-0.1), -3.577152063957297, 1e-10);
}

class LambertW0Identity : public ::testing::TestWithParam<double> {};

TEST_P(LambertW0Identity, SatisfiesDefiningEquation) {
  const double x = GetParam();
  const double w = lambert_w0(x);
  EXPECT_NEAR(w * std::exp(w), x, 1e-12 * std::max(1.0, std::abs(x)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, LambertW0Identity,
                         ::testing::Values(-0.35, -0.2, -0.05, 0.001, 0.5, 1.0,
                                           3.0, 10.0, 100.0, 1e4, 1e8, 1e12));

class LambertWm1Identity : public ::testing::TestWithParam<double> {};

TEST_P(LambertWm1Identity, SatisfiesDefiningEquation) {
  const double x = GetParam();
  const double w = lambert_w_minus1(x);
  EXPECT_LE(w, -1.0 + 1e-9);
  EXPECT_NEAR(w * std::exp(w), x, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LambertWm1Identity,
                         ::testing::Values(-0.3678, -0.3, -0.2, -0.1, -0.01,
                                           -1e-4, -1e-8));

TEST(LambertW, AsymptoticUpperEstimateIsClose) {
  for (const double x : {1e3, 1e6, 1e9, 1e12}) {
    const double exact = lambert_w0(x);
    const double approx = lambert_w0_asymptotic(x);
    // ln x − ln ln x underestimates W slightly for large x; the paper
    // uses it as an asymptotic stand-in.  Relative error < 10%.
    EXPECT_NEAR(approx / exact, 1.0, 0.1) << "x = " << x;
  }
}

// ---------------------------------------------------------------------------
// Root finding
// ---------------------------------------------------------------------------

TEST(Brent, FindsCosineRoot) {
  const RootResult res = brent([](double x) { return std::cos(x); }, 1.0, 2.0);
  EXPECT_NEAR(res.x, kPi / 2.0, 1e-12);
  EXPECT_LT(res.residual, 1e-12);
}

TEST(Brent, FindsPolynomialRoot) {
  auto f = [](double x) { return x * x * x - 2.0 * x - 5.0; };
  const RootResult res = brent(f, 2.0, 3.0);
  EXPECT_NEAR(res.x, 2.0945514815423265, 1e-12);
}

TEST(Brent, AcceptsRootAtEndpoint) {
  auto f = [](double x) { return x - 1.0; };
  EXPECT_DOUBLE_EQ(brent(f, 1.0, 2.0).x, 1.0);
  EXPECT_DOUBLE_EQ(brent(f, 0.0, 1.0).x, 1.0);
}

TEST(Brent, RejectsNonBracketingInterval) {
  EXPECT_THROW((void)brent([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               std::invalid_argument);
}

TEST(Brent, BracketFailureNamesTheEndpoints) {
  // The diagnostic must carry the actual (x, f(x)) pairs — a bare
  // "does not bracket" from deep inside a sweep is undebuggable.
  try {
    (void)brent([](double x) { return x * x + 1.0; }, -1.0, 3.0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("do not bracket"), std::string::npos) << msg;
    EXPECT_NE(msg.find("f(-1) = 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("f(3) = 10"), std::string::npos) << msg;
  }
}

TEST(Bisect, NanEndpointFailureNamesTheEndpoints) {
  try {
    (void)bisect([](double x) { return std::sqrt(x); }, -4.0, 1.0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("NaN at bracket endpoint"), std::string::npos) << msg;
    EXPECT_NE(msg.find("f(-4)"), std::string::npos) << msg;
  }
}

TEST(Bisect, ConvergesLinearly) {
  const RootResult res =
      bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(res.x, std::sqrt(2.0), 1e-12);
}

TEST(FirstCrossing, LocatesEarliestRoot) {
  // sin(x) has roots at π, 2π, ...; the first crossing from 1 must be π.
  auto res = first_crossing([](double x) { return std::sin(x); }, 1.0, 10.0,
                            100);
  ASSERT_TRUE(res.has_value());
  EXPECT_NEAR(res->x, kPi, 1e-10);
}

TEST(FirstCrossing, ReturnsNulloptWithoutRoot) {
  auto res = first_crossing([](double x) { return 1.0 + x * x; }, 0.0, 5.0, 50);
  EXPECT_FALSE(res.has_value());
}

TEST(FirstCrossing, RejectsBadStepCount) {
  EXPECT_THROW(
      (void)first_crossing([](double x) { return x; }, 0.0, 1.0, 0),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, Uniform01InRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanApproximatelyCentered) {
  Xoshiro256 rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform(2.0, 4.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.01);
  EXPECT_GE(stats.min(), 2.0);
  EXPECT_LT(stats.max(), 4.0);
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Xoshiro256 rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, SignIsPlusMinusOne) {
  Xoshiro256 rng(5);
  int plus = 0;
  for (int i = 0; i < 1000; ++i) {
    const int s = rng.sign();
    EXPECT_TRUE(s == 1 || s == -1);
    plus += (s == 1);
  }
  EXPECT_GT(plus, 400);
  EXPECT_LT(plus, 600);
}

TEST(Rng, LogUniformStaysInRange) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.log_uniform(0.01, 100.0);
    EXPECT_GE(v, 0.01);
    EXPECT_LE(v, 100.0);
  }
}

TEST(Rng, InvalidRangesThrow) {
  Xoshiro256 rng(1);
  EXPECT_THROW((void)rng.uniform(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)rng.uniform_int(3, 2), std::invalid_argument);
  EXPECT_THROW((void)rng.log_uniform(-1.0, 2.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(RunningStats, MeanVarianceExtremes) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSinglePass) {
  Xoshiro256 rng(21);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, EmptyAndSingleton) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Quantile, InterpolatesOrderStatistics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile(v, 1.5), std::invalid_argument);
}

TEST(GeometricMean, MatchesClosedForm) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0, 16.0}), 4.0, 1e-12);
  EXPECT_THROW((void)geometric_mean({1.0, -2.0}), std::invalid_argument);
  EXPECT_THROW((void)geometric_mean({}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Interval
// ---------------------------------------------------------------------------

TEST(Interval, BasicOperations) {
  const Interval a = make_interval(0.0, 2.0);
  const Interval b = make_interval(1.0, 3.0);
  EXPECT_DOUBLE_EQ(a.length(), 2.0);
  EXPECT_TRUE(a.contains(1.0));
  EXPECT_FALSE(a.contains(2.5));
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_DOUBLE_EQ(overlap_length(a, b), 1.0);
  const auto inter = intersect(a, b);
  ASSERT_TRUE(inter.has_value());
  EXPECT_DOUBLE_EQ(inter->lo, 1.0);
  EXPECT_DOUBLE_EQ(inter->hi, 2.0);
}

TEST(Interval, DisjointIntersection) {
  const Interval a = make_interval(0.0, 1.0);
  const Interval b = make_interval(2.0, 3.0);
  EXPECT_FALSE(intersect(a, b).has_value());
  EXPECT_DOUBLE_EQ(overlap_length(a, b), 0.0);
  EXPECT_FALSE(a.overlaps(b));
  const Interval h = hull(a, b);
  EXPECT_DOUBLE_EQ(h.lo, 0.0);
  EXPECT_DOUBLE_EQ(h.hi, 3.0);
}

TEST(Interval, TouchingIntervalsDoNotOverlapPositively) {
  const Interval a = make_interval(0.0, 1.0);
  const Interval b = make_interval(1.0, 2.0);
  EXPECT_FALSE(a.overlaps(b));
  ASSERT_TRUE(intersect(a, b).has_value());  // degenerate intersection point
  EXPECT_DOUBLE_EQ(intersect(a, b)->length(), 0.0);
}

TEST(Interval, ScaleAndValidation) {
  const Interval a = make_interval(1.0, 3.0);
  const Interval s = scale(a, 2.0);
  EXPECT_DOUBLE_EQ(s.lo, 2.0);
  EXPECT_DOUBLE_EQ(s.hi, 6.0);
  EXPECT_THROW((void)make_interval(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)scale(a, -1.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Dyadic helpers (Lemma 13 parameterisation)
// ---------------------------------------------------------------------------

TEST(Binary, PowersOfTwoDetection) {
  EXPECT_TRUE(is_power_of_two(1.0));
  EXPECT_TRUE(is_power_of_two(0.5));
  EXPECT_TRUE(is_power_of_two(0.25));
  EXPECT_TRUE(is_power_of_two(1024.0));
  EXPECT_FALSE(is_power_of_two(0.3));
  EXPECT_FALSE(is_power_of_two(3.0));
  EXPECT_FALSE(is_power_of_two(0.0));
  EXPECT_FALSE(is_power_of_two(-2.0));
}

TEST(Binary, FloorCeilLog2) {
  EXPECT_EQ(floor_log2(1.0), 0);
  EXPECT_EQ(floor_log2(2.0), 1);
  EXPECT_EQ(floor_log2(3.0), 1);
  EXPECT_EQ(floor_log2(0.5), -1);
  EXPECT_EQ(floor_log2(0.49), -2);
  EXPECT_EQ(ceil_log2(1.0), 0);
  EXPECT_EQ(ceil_log2(3.0), 2);
  EXPECT_EQ(ceil_log2(4.0), 2);
  EXPECT_THROW((void)floor_log2(0.0), std::invalid_argument);
}

TEST(Binary, Pow2Exact) {
  EXPECT_DOUBLE_EQ(pow2(0), 1.0);
  EXPECT_DOUBLE_EQ(pow2(10), 1024.0);
  EXPECT_DOUBLE_EQ(pow2(-3), 0.125);
}

TEST(Binary, DyadicDecomposePowerOfTwo) {
  // Lemma 13: for τ a power of two, a = ⌊−log τ⌋ − 1 and t = 1/2.
  const auto d = dyadic_decompose(0.5);
  EXPECT_DOUBLE_EQ(d.t, 0.5);
  EXPECT_EQ(d.a, 0);
  const auto d2 = dyadic_decompose(0.25);
  EXPECT_DOUBLE_EQ(d2.t, 0.5);
  EXPECT_EQ(d2.a, 1);
  const auto d3 = dyadic_decompose(0.0625);
  EXPECT_DOUBLE_EQ(d3.t, 0.5);
  EXPECT_EQ(d3.a, 3);
}

TEST(Binary, DyadicDecomposeGeneric) {
  const auto d = dyadic_decompose(0.3);  // 0.3 = 0.6·2⁻¹
  EXPECT_EQ(d.a, 1);
  EXPECT_NEAR(d.t, 0.6, 1e-15);
  const auto d2 = dyadic_decompose(0.9);
  EXPECT_EQ(d2.a, 0);
  EXPECT_NEAR(d2.t, 0.9, 1e-15);
}

TEST(Binary, DyadicDomain) {
  EXPECT_THROW((void)dyadic_decompose(0.0), std::invalid_argument);
  EXPECT_THROW((void)dyadic_decompose(1.0), std::invalid_argument);
  EXPECT_THROW((void)dyadic_decompose(1.5), std::invalid_argument);
}

class DyadicRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(DyadicRoundTrip, RecomposeIsExactAndCanonical) {
  const double tau = GetParam();
  const auto d = dyadic_decompose(tau);
  EXPECT_GE(d.t, 0.5);
  EXPECT_LT(d.t, 1.0);
  EXPECT_GE(d.a, 0);
  EXPECT_NEAR(dyadic_recompose(d), tau, 1e-15 * tau);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DyadicRoundTrip,
                         ::testing::Values(0.5, 0.25, 0.125, 0.3, 0.6, 0.66,
                                           0.75, 0.9, 0.99, 0.013, 1.0 / 3.0));

// ---------------------------------------------------------------------------
// Kahan summation
// ---------------------------------------------------------------------------

TEST(Kahan, CompensatesSmallTerms) {
  KahanSum ks;
  double naive = 0.0;
  ks.add(1e16);
  naive += 1e16;
  for (int i = 0; i < 10000; ++i) {
    ks.add(1.0);
    naive += 1.0;
  }
  EXPECT_DOUBLE_EQ(ks.value(), 1e16 + 10000.0);
  // The naive sum loses the small terms entirely (1.0 < ulp of 1e16).
  EXPECT_NE(naive, 1e16 + 10000.0);
}

TEST(Kahan, HandlesLargeTermAddedLate) {
  KahanSum ks;
  for (int i = 0; i < 1000; ++i) ks.add(1e-3);
  ks.add(1e12);
  EXPECT_NEAR(ks.value(), 1e12 + 1.0, 1e-3);
}

TEST(Kahan, Reset) {
  KahanSum ks;
  ks.add(5.0);
  ks.reset();
  EXPECT_DOUBLE_EQ(ks.value(), 0.0);
}

// Constants sanity: the specific factors of the paper's algebra.
TEST(Constants, PaperFactors) {
  EXPECT_NEAR(kSearchCircleFactor, 2.0 * (kPi + 1.0), 0.0);
  EXPECT_NEAR(kTheorem1Factor, 3.0 * kSearchCircleFactor, 1e-15);
  EXPECT_NEAR(kSearchAllFactor, 12.0 * (kPi + 1.0), 0.0);
  EXPECT_NEAR(kScheduleFactor, 2.0 * kSearchAllFactor, 0.0);
}

}  // namespace
