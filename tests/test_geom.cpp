// Tests for the geometry substrate: vectors, matrices, attributes, and
// the paper-specific difference-map algebra (Lemmas 4–7).

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <tuple>

#include "geom/angle.hpp"
#include "geom/attributes.hpp"
#include "geom/difference_map.hpp"
#include "geom/mat2.hpp"
#include "geom/vec2.hpp"
#include "mathx/constants.hpp"
#include "mathx/rng.hpp"

namespace {

using namespace rv::geom;
using rv::mathx::kPi;
using rv::mathx::kTwoPi;

// ---------------------------------------------------------------------------
// Vec2
// ---------------------------------------------------------------------------

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(-a, (Vec2{-1.0, -2.0}));
}

TEST(Vec2Test, DotCrossNorm) {
  const Vec2 a{3.0, 4.0};
  const Vec2 b{-4.0, 3.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 0.0);
  EXPECT_DOUBLE_EQ(cross(a, b), 25.0);
  EXPECT_DOUBLE_EQ(norm(a), 5.0);
  EXPECT_DOUBLE_EQ(norm_sq(a), 25.0);
  EXPECT_DOUBLE_EQ(distance(a, b), std::sqrt(49.0 + 1.0));
}

TEST(Vec2Test, NormalizedAndPerp) {
  const Vec2 v{3.0, 4.0};
  const Vec2 n = normalized(v);
  EXPECT_NEAR(norm(n), 1.0, 1e-15);
  EXPECT_EQ(normalized(Vec2{}), (Vec2{0.0, 0.0}));
  EXPECT_DOUBLE_EQ(dot(perp(v), v), 0.0);
  EXPECT_DOUBLE_EQ(cross(v, perp(v)), norm_sq(v));
}

TEST(Vec2Test, PolarAndAngle) {
  const Vec2 p = polar(2.0, kPi / 2.0);
  EXPECT_NEAR(p.x, 0.0, 1e-15);
  EXPECT_NEAR(p.y, 2.0, 1e-15);
  EXPECT_NEAR(angle_of({0.0, 1.0}), kPi / 2.0, 1e-15);
  EXPECT_NEAR(angle_of({-1.0, 0.0}), kPi, 1e-15);
}

TEST(Vec2Test, LerpFiniteApproxStream) {
  EXPECT_EQ(lerp({0.0, 0.0}, {2.0, 4.0}, 0.5), (Vec2{1.0, 2.0}));
  EXPECT_TRUE(is_finite({1.0, 2.0}));
  EXPECT_FALSE(is_finite({1.0, std::nan("")}));
  EXPECT_TRUE(approx_equal(Vec2{1.0, 1.0}, Vec2{1.0 + 1e-10, 1.0}, 1e-9));
  EXPECT_FALSE(approx_equal(Vec2{1.0, 1.0}, Vec2{1.1, 1.0}, 1e-9));
  std::ostringstream os;
  os << Vec2{1.5, -2.0};
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

// ---------------------------------------------------------------------------
// Mat2
// ---------------------------------------------------------------------------

TEST(Mat2Test, IdentityAndProducts) {
  const Mat2 i = identity();
  const Mat2 m{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(i * m, m);
  EXPECT_EQ(m * i, m);
  const Vec2 v{1.0, 1.0};
  EXPECT_EQ(m * v, (Vec2{3.0, 7.0}));
  EXPECT_DOUBLE_EQ(det(m), -2.0);
  EXPECT_DOUBLE_EQ(trace(m), 5.0);
}

TEST(Mat2Test, InverseRoundTrip) {
  const Mat2 m{2.0, 1.0, 1.0, 3.0};
  const Mat2 minv = inverse(m);
  EXPECT_TRUE(approx_equal(m * minv, identity(), 1e-14));
  EXPECT_TRUE(approx_equal(minv * m, identity(), 1e-14));
  EXPECT_THROW((void)inverse(Mat2{1.0, 2.0, 2.0, 4.0}), std::invalid_argument);
}

TEST(Mat2Test, RotationProperties) {
  const Mat2 r = rotation(0.7);
  EXPECT_TRUE(is_orthogonal(r));
  EXPECT_NEAR(det(r), 1.0, 1e-15);
  // Rotation composition = angle addition.
  EXPECT_TRUE(approx_equal(rotation(0.3) * rotation(0.4), rotation(0.7), 1e-15));
  // Rotations preserve norms.
  const Vec2 v{1.2, -0.7};
  EXPECT_NEAR(norm(r * v), norm(v), 1e-15);
}

TEST(Mat2Test, ChiralityMatrix) {
  EXPECT_EQ(chirality(1), identity());
  EXPECT_EQ(chirality(-1), reflection_x_axis());
  EXPECT_THROW((void)chirality(0), std::invalid_argument);
  // Reflection flips orientation (negative determinant) and the cross
  // product sign.
  const Mat2 c = chirality(-1);
  EXPECT_DOUBLE_EQ(det(c), -1.0);
  const Vec2 a{1.0, 2.0}, b{3.0, 1.0};
  EXPECT_DOUBLE_EQ(cross(c * a, c * b), -cross(a, b));
}

TEST(Mat2Test, NormsAndSingularValues) {
  const Mat2 diag{3.0, 0.0, 0.0, 2.0};
  EXPECT_DOUBLE_EQ(operator_norm(diag), 3.0);
  EXPECT_DOUBLE_EQ(min_singular_value(diag), 2.0);
  EXPECT_DOUBLE_EQ(frobenius_norm(diag), std::sqrt(13.0));
  // Orthogonal matrices have both singular values 1.
  const Mat2 r = rotation(1.1);
  EXPECT_NEAR(operator_norm(r), 1.0, 1e-14);
  EXPECT_NEAR(min_singular_value(r), 1.0, 1e-14);
}

// ---------------------------------------------------------------------------
// Angles
// ---------------------------------------------------------------------------

TEST(AngleTest, Normalization) {
  EXPECT_NEAR(normalize_angle(kTwoPi + 0.5), 0.5, 1e-14);
  EXPECT_NEAR(normalize_angle(-0.5), kTwoPi - 0.5, 1e-14);
  EXPECT_DOUBLE_EQ(normalize_angle(0.0), 0.0);
  EXPECT_LT(normalize_angle(-1e-18), kTwoPi);
  EXPECT_NEAR(normalize_angle_signed(kTwoPi - 0.1), -0.1, 1e-13);
  EXPECT_NEAR(angular_distance(0.1, kTwoPi - 0.1), 0.2, 1e-13);
  EXPECT_NEAR(deg_to_rad(180.0), kPi, 1e-15);
  EXPECT_NEAR(rad_to_deg(kPi / 2.0), 90.0, 1e-13);
}

// ---------------------------------------------------------------------------
// RobotAttributes / frame map (Lemma 4)
// ---------------------------------------------------------------------------

TEST(AttributesTest, ValidationRules) {
  RobotAttributes a;
  EXPECT_NO_THROW((void)validated(a));
  a.speed = 0.0;
  EXPECT_THROW((void)validated(a), std::invalid_argument);
  a.speed = 1.0;
  a.time_unit = -2.0;
  EXPECT_THROW((void)validated(a), std::invalid_argument);
  a.time_unit = 1.0;
  a.chirality = 2;
  EXPECT_THROW((void)validated(a), std::invalid_argument);
  a.chirality = -1;
  a.orientation = -kPi;  // must be normalised into [0, 2π)
  const RobotAttributes v = validated(a);
  EXPECT_NEAR(v.orientation, kPi, 1e-15);
}

TEST(AttributesTest, ReferenceFrameIsIdentity) {
  const RobotAttributes ref = reference_attributes();
  EXPECT_TRUE(approx_equal(frame_matrix(ref), identity(), 1e-15));
  EXPECT_DOUBLE_EQ(global_to_local_time(ref, 5.0), 5.0);
}

TEST(AttributesTest, FrameMatrixLemma4Form) {
  // Lemma 4: S'(t) = v·R(φ)·diag(1,χ)·S(t) for τ = 1.
  RobotAttributes a;
  a.speed = 2.0;
  a.orientation = kPi / 3.0;
  a.chirality = -1;
  const Mat2 expect = 2.0 * (rotation(kPi / 3.0) * chirality(-1));
  EXPECT_TRUE(approx_equal(frame_matrix(a), expect, 1e-15));
}

TEST(AttributesTest, TimeUnitScalesDistanceUnit) {
  // The robot's distance unit is v·τ global units.
  RobotAttributes a;
  a.speed = 3.0;
  a.time_unit = 0.5;
  const Vec2 image = local_to_global(a, {1.0, 0.0});
  EXPECT_NEAR(norm(image), 1.5, 1e-15);
  EXPECT_DOUBLE_EQ(global_to_local_time(a, 2.0), 4.0);
  EXPECT_DOUBLE_EQ(local_to_global_time(a, 4.0), 2.0);
}

class FrameMapProperty
    : public ::testing::TestWithParam<std::tuple<double, double, double, int>> {
};

TEST_P(FrameMapProperty, PreservesScaledNormsAndHandedness) {
  const auto [v, tau, phi, chi] = GetParam();
  RobotAttributes a;
  a.speed = v;
  a.time_unit = tau;
  a.orientation = phi;
  a.chirality = chi;
  a = validated(a);
  rv::mathx::Xoshiro256 rng(1234);
  for (int i = 0; i < 50; ++i) {
    const Vec2 x{rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)};
    const Vec2 y{rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)};
    const Vec2 mx = local_to_global(a, x);
    const Vec2 my = local_to_global(a, y);
    // Uniform scaling by v·τ.
    EXPECT_NEAR(norm(mx), v * tau * norm(x), 1e-9 * (1.0 + norm(x)));
    // Angles between vectors preserved up to chirality sign.
    EXPECT_NEAR(dot(mx, my), v * tau * v * tau * dot(x, y),
                1e-7 * (1.0 + std::abs(dot(x, y))));
    EXPECT_NEAR(cross(mx, my), chi * v * tau * v * tau * cross(x, y),
                1e-7 * (1.0 + std::abs(cross(x, y))));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FrameMapProperty,
    ::testing::Values(std::make_tuple(1.0, 1.0, 0.0, 1),
                      std::make_tuple(2.0, 1.0, 0.5, 1),
                      std::make_tuple(0.5, 2.0, 1.0, -1),
                      std::make_tuple(1.5, 0.25, 3.0, -1),
                      std::make_tuple(3.0, 3.0, 6.0, 1)));

// ---------------------------------------------------------------------------
// Difference map (Section 3, Lemmas 5–7)
// ---------------------------------------------------------------------------

TEST(DifferenceMap, MuKnownValues) {
  EXPECT_DOUBLE_EQ(mu(1.0, 0.0), 0.0);
  EXPECT_NEAR(mu(1.0, kPi), 2.0, 1e-15);            // opposite orientations
  EXPECT_NEAR(mu(2.0, 0.0), 1.0, 1e-15);            // pure speed difference
  EXPECT_NEAR(mu(1.0, kPi / 2.0), std::sqrt(2.0), 1e-15);
}

TEST(DifferenceMap, MatrixMatchesDefinition) {
  // T∘ = I − v·R(φ)·diag(1,χ) — the separation map of Lemma 4.
  rv::mathx::Xoshiro256 rng(99);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.uniform(0.1, 3.0);
    const double phi = rng.angle();
    const int chi = rng.sign();
    const Mat2 direct = identity() - v * (rotation(phi) * chirality(chi));
    EXPECT_TRUE(approx_equal(difference_matrix(v, phi, chi), direct, 1e-12));
  }
}

TEST(DifferenceMap, DeterminantFormula) {
  rv::mathx::Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.uniform(0.1, 3.0);
    const double phi = rng.angle();
    const int chi = rng.sign();
    EXPECT_NEAR(det(difference_matrix(v, phi, chi)),
                difference_determinant(v, phi, chi), 1e-12);
  }
}

TEST(DifferenceMap, SingularExactlyOnInfeasibleTuples) {
  // χ = −1, v = 1: singular for every φ (mirror robots).
  for (const double phi : {0.0, 0.5, 1.0, kPi, 5.0}) {
    EXPECT_NEAR(difference_determinant(1.0, phi, -1), 0.0, 1e-12) << phi;
  }
  // χ = +1: singular only at v = 1, φ = 0.
  EXPECT_NEAR(difference_determinant(1.0, 0.0, 1), 0.0, 1e-15);
  EXPECT_GT(std::abs(difference_determinant(1.0, 1.0, 1)), 0.1);
  EXPECT_GT(std::abs(difference_determinant(2.0, 0.0, 1)), 0.1);
}

class QrFactorisation
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(QrFactorisation, Lemma5Reconstruction) {
  const auto [v, phi, chi] = GetParam();
  const Mat2 t_circ = difference_matrix(v, phi, chi);
  const DifferenceFactorization f = factor_difference_matrix(v, phi, chi);
  // Φ orthogonal with determinant +1.
  EXPECT_TRUE(is_orthogonal(f.rotation, 1e-10));
  EXPECT_NEAR(det(f.rotation), 1.0, 1e-10);
  // T∘′ upper triangular with T∘′₁₁ = µ.
  EXPECT_NEAR(f.upper.c, 0.0, 1e-12);
  EXPECT_NEAR(f.upper.a, mu(v, phi), 1e-12);
  // Product reconstructs T∘.
  EXPECT_TRUE(approx_equal(f.rotation * f.upper, t_circ, 1e-10));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QrFactorisation,
    ::testing::Values(std::make_tuple(2.0, 0.0, 1),
                      std::make_tuple(0.5, 1.0, 1),
                      std::make_tuple(1.0, kPi / 2.0, 1),
                      std::make_tuple(1.0, kPi, 1),
                      std::make_tuple(0.5, 0.7, -1),
                      std::make_tuple(0.9, 2.0, -1),
                      std::make_tuple(0.99, 5.5, -1),
                      std::make_tuple(3.0, 4.0, -1)));

TEST(QrFactorisation, RandomisedReconstruction) {
  rv::mathx::Xoshiro256 rng(2024);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.uniform(0.05, 4.0);
    const double phi = rng.angle();
    const int chi = rng.sign();
    if (mu(v, phi) < 1e-6) continue;
    const DifferenceFactorization f = factor_difference_matrix(v, phi, chi);
    EXPECT_TRUE(
        approx_equal(f.rotation * f.upper, difference_matrix(v, phi, chi),
                     1e-9))
        << "v=" << v << " phi=" << phi << " chi=" << chi;
  }
}

TEST(QrFactorisation, ThrowsAtMuZero) {
  EXPECT_THROW((void)factor_difference_matrix(1.0, 0.0, 1),
               std::invalid_argument);
}

TEST(DifferenceMap, CommonChiralityIsPureScaling) {
  // Lemma 6: for χ = +1, T∘′ = µ·I.
  for (const double v : {0.5, 1.0, 2.0}) {
    for (const double phi : {0.3, 1.0, kPi}) {
      const Mat2 u = equivalent_search_map(v, phi, 1);
      const double m = mu(v, phi);
      EXPECT_NEAR(u.a, m, 1e-12);
      EXPECT_NEAR(u.d, m, 1e-12);
      EXPECT_NEAR(u.b, 0.0, 1e-12);
      EXPECT_NEAR(u.c, 0.0, 1e-12);
    }
  }
}

TEST(DifferenceMap, OppositeChiralityLowerRightEntry) {
  // Lemma 7: for χ = −1, T∘′₂₂ = (1 − v²)/µ.
  for (const double v : {0.3, 0.7, 0.9}) {
    for (const double phi : {0.5, 2.0, 4.0}) {
      const Mat2 u = equivalent_search_map(v, phi, -1);
      const double m = mu(v, phi);
      EXPECT_NEAR(u.d, (1.0 - v * v) / m, 1e-12);
    }
  }
}

TEST(DifferenceMap, DirectionGainBounds) {
  // |T∘ᵀ·d̂| for the worst direction is bounded below by 1 − v when
  // χ = −1 and v < 1 (Lemma 7's conclusion).
  rv::mathx::Xoshiro256 rng(31);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.uniform(0.05, 0.95);
    const double phi = rng.angle();
    const Mat2 t_circ = difference_matrix(v, phi, -1);
    const Vec2 d_hat = rv::geom::unit(rng.angle());
    const double gain = direction_gain(t_circ, d_hat);
    EXPECT_GE(gain, worst_case_gain_opposite_chirality(v) - 1e-9)
        << "v=" << v << " phi=" << phi;
  }
}

TEST(DifferenceMap, WorstCaseGainDomain) {
  EXPECT_THROW((void)worst_case_gain_opposite_chirality(1.0),
               std::invalid_argument);
  EXPECT_THROW((void)worst_case_gain_opposite_chirality(1.5),
               std::invalid_argument);
  EXPECT_DOUBLE_EQ(worst_case_gain_opposite_chirality(0.25), 0.75);
}

}  // namespace
