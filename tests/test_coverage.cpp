// Tests for the coverage-accounting module: grid marking, disk
// fractions, the measured sweep of known trajectories, and the area
// budget.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/coverage.hpp"
#include "mathx/binary.hpp"
#include "mathx/constants.hpp"
#include "search/algorithm4.hpp"
#include "search/paths.hpp"
#include "search/times.hpp"
#include "traj/path.hpp"
#include "traj/program.hpp"

namespace {

using namespace rv::analysis;
using rv::geom::Vec2;

TEST(CoverageGrid, ValidationAndGeometry) {
  EXPECT_THROW(CoverageGrid(0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(CoverageGrid(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(CoverageGrid(100.0, 0.01), std::invalid_argument);  // too fine
  const CoverageGrid grid(1.0, 0.1);
  EXPECT_EQ(grid.side(), 20);
  EXPECT_EQ(grid.marked_cells(), 0u);
}

TEST(CoverageGrid, MarkDiskCountsApproximateArea) {
  CoverageGrid grid(2.0, 0.02);
  grid.mark_disk({0.0, 0.0}, 1.0);
  // Marked area ≈ π·1² within a few percent at this resolution.
  EXPECT_NEAR(grid.covered_area(), rv::mathx::kPi, 0.05);
  // The unit disk itself is fully covered.
  EXPECT_NEAR(grid.covered_fraction_of_disk(0.99), 1.0, 1e-12);
  // The radius-2 disk is roughly a quarter covered (area ratio 1/4).
  EXPECT_NEAR(grid.covered_fraction_of_disk(2.0), 0.25, 0.02);
}

TEST(CoverageGrid, MarksAreIdempotent) {
  CoverageGrid grid(1.0, 0.05);
  grid.mark_disk({0.2, 0.1}, 0.3);
  const auto first = grid.marked_cells();
  grid.mark_disk({0.2, 0.1}, 0.3);
  EXPECT_EQ(grid.marked_cells(), first);
}

TEST(CoverageGrid, OutOfWindowMarksClip) {
  CoverageGrid grid(1.0, 0.1);
  grid.mark_disk({10.0, 10.0}, 0.5);  // fully outside
  EXPECT_EQ(grid.marked_cells(), 0u);
  grid.mark_disk({1.0, 0.0}, 0.3);  // straddles the boundary
  EXPECT_GT(grid.marked_cells(), 0u);
}

TEST(MeasureCoverage, SingleCirclePassCoversAnnulusBand) {
  // SearchCircle(1) with visibility 0.2 covers the band [0.8, 1.2]
  // plus the spoke along +x.  The fraction of the radius-2 disk is
  // the band area (π(1.2²−0.8²) = 0.8π) plus a thin spoke, over 4π.
  rv::traj::Path circle = rv::search::search_circle_path(1.0);
  CoverageOptions opts;
  opts.visibility = 0.2;
  opts.disk_radius = 2.0;
  opts.cell = 0.02;
  opts.horizon = circle.duration();
  opts.checkpoints = 4;
  const auto series = measure_coverage(
      std::make_shared<rv::traj::PathProgram>(circle, "circle"),
      rv::geom::reference_attributes(), opts);
  ASSERT_EQ(series.size(), 4u);
  // Band fraction 0.2 plus the swept spoke along +x (~0.03).
  EXPECT_GE(series.back().fraction, 0.19);
  EXPECT_LE(series.back().fraction, 0.28);
  // Coverage is monotone in time.
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].fraction, series[i - 1].fraction - 1e-12);
  }
}

TEST(MeasureCoverage, Algorithm4CoversTargetBandByGuaranteedRound) {
  // The guaranteed round covers the *distance band* of the target —
  // round k's innermost circle sits at 2^{−k}, so the deep interior is
  // only reached by later rounds.  Measured: by the end of the
  // guaranteed round for (d, r) the coverage of the radius-d disk is
  // high but not total (interior hole of radius ~2^{−k} − r remains).
  const double d = 1.0, r = 0.125;
  const int k = rv::search::guaranteed_round(d, r);  // k = 1 here
  CoverageOptions opts;
  opts.visibility = r;
  opts.disk_radius = d;
  opts.cell = 0.02;
  opts.horizon = rv::search::time_first_rounds(k);
  opts.checkpoints = 8;
  const auto series =
      measure_coverage(rv::search::make_search_program(),
                       rv::geom::reference_attributes(), opts);
  // Band [2^{−k}, d] covered; interior hole ≈ π(2^{−k} − r)²/πd².
  const double hole = std::pow(rv::mathx::pow2(-k) - r, 2.0) / (d * d);
  EXPECT_GE(series.back().fraction, 1.0 - hole - 0.05);
  EXPECT_LT(series.back().fraction, 1.0);  // the hole is real
}

TEST(MeasureCoverage, Algorithm4FullyCoversDiskOncePowersReachVisibility) {
  // Full-disk coverage needs the round k_full with 2^{−k} ≤ r (the
  // innermost circle passes within r of the origin) *and* band
  // granularity ≤ r out to d.  For d = 1, r = 0.125 that is k = 3.
  const double d = 1.0, r = 0.125;
  const int k_full = 3;
  CoverageOptions opts;
  opts.visibility = r;
  opts.disk_radius = d;
  opts.cell = 0.02;
  opts.horizon = rv::search::time_first_rounds(k_full);
  opts.checkpoints = 6;
  const auto series =
      measure_coverage(rv::search::make_search_program(),
                       rv::geom::reference_attributes(), opts);
  EXPECT_GE(series.back().fraction, 0.999);
}

TEST(MeasureCoverage, RespectsAreaBudget) {
  // No trajectory can cover area faster than 2r per unit time (plus
  // the initial disk πr²).  Check the invariant on Algorithm 4's
  // measured sweep.
  const double r = 0.15;
  CoverageOptions opts;
  opts.visibility = r;
  opts.disk_radius = 1.5;
  opts.cell = 0.02;
  opts.horizon = 300.0;
  opts.checkpoints = 16;
  const auto series =
      measure_coverage(rv::search::make_search_program(),
                       rv::geom::reference_attributes(), opts);
  for (const auto& pt : series) {
    EXPECT_LE(pt.covered_area,
              2.0 * r * pt.time + rv::mathx::kPi * r * r + 0.05)
        << "t=" << pt.time;
  }
}

TEST(AreaBudget, ClosedFormAndGuards) {
  EXPECT_NEAR(area_budget_time(2.0, 0.1), rv::mathx::kPi * 4.0 / 0.2, 1e-12);
  EXPECT_THROW((void)area_budget_time(0.0, 0.1), std::invalid_argument);
  EXPECT_THROW((void)area_budget_time(1.0, 0.0), std::invalid_argument);
}

TEST(MeasureCoverage, OptionValidation) {
  CoverageOptions bad;
  bad.horizon = 0.0;
  EXPECT_THROW((void)measure_coverage(rv::search::make_search_program(),
                                      rv::geom::reference_attributes(), bad),
               std::invalid_argument);
}

}  // namespace
