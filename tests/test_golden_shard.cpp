// Process-level golden pins for the rv_batch front-end — the
// acceptance harness of the sharded engine:
//
//  * the single-process CSV of every built-in set is pinned byte for
//    byte under tests/golden/rv_batch/;
//  * running the same set as 2 and as 3 shard *processes*, persisting
//    each shard's outcomes to a cache file and merging, must reproduce
//    those exact bytes (all cache hits, nothing recomputed);
//  * a cold-cache run followed by a warm-cache run must report
//    all-hits (enforced in-process by --require-all-hits) and emit
//    identical bytes;
//  * the fork-based `--procs P` local mode must match too.
//
// Regenerate intentionally changed pins with RV_UPDATE_GOLDEN=1 (see
// golden.hpp); the built-in set declarations live in
// tools/rv_batch_sets.hpp and are part of the pinned surface.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <optional>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <vector>

#include "golden.hpp"

namespace {

namespace fs = std::filesystem;
namespace golden = rv::golden;

/// Directory holding the built binaries (the build tree root).
fs::path build_dir() {
#ifdef RV_BENCH_DIR
  return fs::path(RV_BENCH_DIR);
#else
  return fs::current_path();
#endif
}

fs::path rv_batch_binary() { return build_dir() / "rv_batch"; }

/// Runs `cmd` through the shell, returning captured stdout; fails the
/// test (and returns nullopt) on spawn failure or non-zero exit.
std::optional<std::string> run_and_capture(const std::string& cmd) {
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    ADD_FAILURE() << "popen failed for: " << cmd;
    return std::nullopt;
  }
  std::string out;
  char buffer[4096];
  std::size_t n;
  while ((n = fread(buffer, 1, sizeof buffer, pipe)) > 0) out.append(buffer, n);
  const int status = pclose(pipe);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    ADD_FAILURE() << "command failed (status " << status << "): " << cmd;
    return std::nullopt;
  }
  return out;
}

/// Scratch directory removed on every exit path.
struct Scratch {
  fs::path path;
  Scratch() {
    std::string buffer =
        (fs::temp_directory_path() / "rv_golden_batch_XXXXXX").string();
    EXPECT_NE(mkdtemp(buffer.data()), nullptr) << "mkdtemp failed";
    path = buffer;
  }
  ~Scratch() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

std::string batch_cmd(const std::string& args) {
  return "'" + rv_batch_binary().string() + "' " + args;
}

class GoldenBatchSet : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (!fs::exists(rv_batch_binary())) {
      GTEST_SKIP() << rv_batch_binary()
                   << " not built (RV_BUILD_TOOLS=OFF?)";
    }
  }
};

TEST_P(GoldenBatchSet, SingleProcessCsvMatchesPin) {
  const std::string set = GetParam();
  const auto out = run_and_capture(batch_cmd("run --set " + set));
  if (out.has_value()) {
    golden::compare(*out, "rv_batch/" + set + ".csv");
  }
}

TEST_P(GoldenBatchSet, ShardedProcessesMergeToTheExactSingleProcessBytes) {
  const std::string set = GetParam();
  const auto single = run_and_capture(batch_cmd("run --set " + set));
  ASSERT_TRUE(single.has_value());

  for (const int num_shards : {2, 3}) {
    Scratch scratch;
    const std::string dir = (scratch.path / "cache").string();
    for (int s = 0; s < num_shards; ++s) {
      // Each shard is its own process; its stdout (the partial
      // document) is irrelevant here — only the persisted cache file
      // crosses the process boundary.
      const auto shard_out = run_and_capture(
          batch_cmd("run --set " + set + " --shard " + std::to_string(s) +
                    "/" + std::to_string(num_shards) + " --cache-dir '" +
                    dir + "' >/dev/null && echo ok"));
      ASSERT_TRUE(shard_out.has_value()) << "shard " << s;
    }
    // The merge process replays every outcome from the shard files:
    // --require-all-hits turns any recomputation into a hard failure.
    const auto merged = run_and_capture(batch_cmd(
        "merge --set " + set + " --cache-dir '" + dir +
        "' --require-all-hits"));
    ASSERT_TRUE(merged.has_value()) << num_shards << " shards";
    EXPECT_EQ(*merged, *single)
        << set << " split over " << num_shards
        << " processes must merge to the single-process bytes";
  }
}

TEST_P(GoldenBatchSet, ColdThenWarmCacheRunsAreAllHitsAndIdentical) {
  const std::string set = GetParam();
  Scratch scratch;
  const std::string dir = (scratch.path / "cache").string();
  const auto cold = run_and_capture(
      batch_cmd("run --set " + set + " --cache-dir '" + dir + "'"));
  // The warm run must replay every outcome from the persisted file —
  // --require-all-hits makes a miss a non-zero exit, which
  // run_and_capture reports as a failure.
  const auto warm = run_and_capture(
      batch_cmd("run --set " + set + " --cache-dir '" + dir +
                "' --require-all-hits"));
  ASSERT_TRUE(cold.has_value());
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(*cold, *warm) << "warm-cache bytes drifted for " << set;
}

INSTANTIATE_TEST_SUITE_P(
    BuiltinSets, GoldenBatchSet,
    ::testing::Values("rendezvous-grid", "search-ring", "gather-fleet",
                      "linear-line", "coverage-disk"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(GoldenBatch, ForkedProcsModeMatchesSingleProcessBytes) {
  if (!fs::exists(rv_batch_binary())) {
    GTEST_SKIP() << rv_batch_binary() << " not built";
  }
  const std::string set = "search-ring";
  const auto single = run_and_capture(batch_cmd("run --set " + set));
  Scratch scratch;
  const auto forked = run_and_capture(
      batch_cmd("run --set " + set + " --procs 2 --cache-dir '" +
                (scratch.path / "cache").string() + "' --require-all-hits"));
  ASSERT_TRUE(single.has_value());
  ASSERT_TRUE(forked.has_value());
  EXPECT_EQ(*forked, *single);
}

// ---------------------------------------------------------------------------
// Chaos pins: failpoint-armed shard runs (engine/failpoint.hpp) under
// the supervisor must either recover to the exact fault-free bytes or
// degrade with a documented exit code and coverage report.  The specs
// ride in on RV_FAILPOINTS, so only the rv_batch child processes are
// armed — this test binary never is.
// ---------------------------------------------------------------------------

struct RunStatus {
  int code = -1;       ///< process exit code (-1: spawn failure/signal)
  std::string stdout_text;
};

/// Like run_and_capture, but returns the exit code instead of failing
/// on it — chaos cases assert specific nonzero codes.
RunStatus run_status(const std::string& cmd) {
  RunStatus result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    ADD_FAILURE() << "popen failed for: " << cmd;
    return result;
  }
  char buffer[4096];
  std::size_t n;
  while ((n = fread(buffer, 1, sizeof buffer, pipe)) > 0) {
    result.stdout_text.append(buffer, n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.code = WEXITSTATUS(status);
  return result;
}

class GoldenBatchChaos : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fs::exists(rv_batch_binary())) {
      GTEST_SKIP() << rv_batch_binary() << " not built";
    }
  }
};

TEST_F(GoldenBatchChaos, CrashedShardIsRetriedToFaultFreeBytes) {
  const auto single = run_and_capture(batch_cmd("run --set linear-line"));
  ASSERT_TRUE(single.has_value());
  Scratch scratch;
  // Shard 1's worker crashes on its first attempt only (limit=1 in the
  // fork-shared counter slab); --retries 2 must re-execute just that
  // shard and the merged document must be byte-identical.
  const RunStatus chaos = run_status(
      "RV_FAILPOINTS='shard.worker.start=crash(87),index=1,limit=1' " +
      batch_cmd("run --set linear-line --procs 3 --retries 2 --backoff-ms 10"
                " --cache-dir '" +
                (scratch.path / "cache").string() + "' 2>/dev/null"));
  EXPECT_EQ(chaos.code, 0);
  EXPECT_EQ(chaos.stdout_text, *single)
      << "retried chaos run drifted from the fault-free bytes";
}

TEST_F(GoldenBatchChaos, TornShardWritesHealToFaultFreeBytes) {
  const auto single = run_and_capture(batch_cmd("run --set linear-line"));
  ASSERT_TRUE(single.has_value());
  Scratch scratch;
  // Every shard cache save is torn to 48 bytes: the merge loader skips
  // the damage and the final pass recomputes the holes — the output
  // bytes must not change.
  const RunStatus chaos = run_status(
      "RV_FAILPOINTS='cache_store.save.pre_rename=torn_write(48)' " +
      batch_cmd("run --set linear-line --procs 2 --cache-dir '" +
                (scratch.path / "cache").string() + "' 2>/dev/null"));
  EXPECT_EQ(chaos.code, 0);
  EXPECT_EQ(chaos.stdout_text, *single);
}

TEST_F(GoldenBatchChaos, ExhaustedRetriesFailWithExitCode4AndNoDocument) {
  Scratch scratch;
  // The crash has no limit: every attempt of shard 1 dies, the budget
  // (--retries 1 = 2 attempts) runs out, and default mode must exit
  // with the documented code 4 while emitting NO partial document.
  const RunStatus chaos = run_status(
      "RV_FAILPOINTS='shard.worker.start=crash(87),index=1' " +
      batch_cmd("run --set linear-line --procs 3 --retries 1 --backoff-ms 10"
                " --cache-dir '" +
                (scratch.path / "cache").string() + "' 2>/dev/null"));
  EXPECT_EQ(chaos.code, 4);
  EXPECT_TRUE(chaos.stdout_text.empty())
      << "default mode must not emit a partial document";
}

TEST_F(GoldenBatchChaos, PartialEmitsSurvivingSubsetAndCoverageReport) {
  const auto single = run_and_capture(batch_cmd("run --set linear-line"));
  ASSERT_TRUE(single.has_value());
  Scratch scratch;
  const fs::path errfile = scratch.path / "stderr.txt";
  const RunStatus chaos = run_status(
      "RV_FAILPOINTS='shard.worker.start=crash(87),index=1' " +
      batch_cmd("run --set linear-line --procs 3 --retries 1 --backoff-ms 10"
                " --partial --cache-dir '" +
                (scratch.path / "cache").string() + "' 2>'" +
                errfile.string() + "'"));
  EXPECT_EQ(chaos.code, 0) << "--partial degrades gracefully";
  // linear-line has 4 items; shard 1 of 3 owns exactly global index 1,
  // so the surviving subset is the full document minus that row (data
  // row 1 = line index 2, after the header).
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(*single);
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 5u);  // header + 4 rows
  const std::string expect_subset =
      lines[0] + "\n" + lines[1] + "\n" + lines[3] + "\n" + lines[4] + "\n";
  EXPECT_EQ(chaos.stdout_text, expect_subset);
  // The machine-readable coverage report names the missing pieces.
  std::ifstream err(errfile);
  const std::string err_text((std::istreambuf_iterator<char>(err)),
                             std::istreambuf_iterator<char>());
  EXPECT_NE(err_text.find("\"failed_shards\": [1]"), std::string::npos)
      << err_text;
  EXPECT_NE(err_text.find("\"missing_indices\": [1]"), std::string::npos)
      << err_text;
  EXPECT_NE(err_text.find("shard  attempt  outcome"), std::string::npos)
      << err_text;
}

// ---------------------------------------------------------------------------
// `.rvset` twins and cache-dir hygiene: every built-in set ships an
// equivalent examples/sets/<name>.rvset; running the twin must emit the
// built-in's exact bytes, and a shard → compact → warm-merge pipeline
// over the twin must replay everything from the single compacted file.
// ---------------------------------------------------------------------------

/// The shipped `.rvset` twin of a built-in set.
fs::path twin_file(const std::string& set) {
#ifdef RV_SETS_DIR
  return fs::path(RV_SETS_DIR) / (set + ".rvset");
#else
  return fs::path("examples/sets") / (set + ".rvset");
#endif
}

TEST_P(GoldenBatchSet, RvsetTwinEmitsTheExactBuiltinBytes) {
  const std::string set = GetParam();
  const fs::path twin = twin_file(set);
  ASSERT_TRUE(fs::exists(twin)) << twin;
  const auto builtin = run_and_capture(batch_cmd("run --set " + set));
  const auto from_file =
      run_and_capture(batch_cmd("run --set-file '" + twin.string() + "'"));
  ASSERT_TRUE(builtin.has_value());
  ASSERT_TRUE(from_file.has_value());
  EXPECT_EQ(*from_file, *builtin)
      << twin << " drifted from the compiled-in declaration";
}

TEST_P(GoldenBatchSet, ShardCompactWarmMergePipelineReplaysFromOneFile) {
  const std::string set = GetParam();
  const fs::path twin = twin_file(set);
  ASSERT_TRUE(fs::exists(twin)) << twin;
  const auto single = run_and_capture(batch_cmd("run --set " + set));
  ASSERT_TRUE(single.has_value());

  Scratch scratch;
  const std::string dir = (scratch.path / "cache").string();
  // Two shard processes populate the cache dir from the *twin* file.
  for (int s = 0; s < 2; ++s) {
    const auto shard_out = run_and_capture(
        batch_cmd("run --set-file '" + twin.string() + "' --shard " +
                  std::to_string(s) + "/2 --cache-dir '" + dir +
                  "' >/dev/null && echo ok"));
    ASSERT_TRUE(shard_out.has_value()) << "shard " << s;
  }
  // Compact folds the shard files into one; originals are deleted.
  const auto compact_out =
      run_and_capture(batch_cmd("compact --cache-dir '" + dir + "'"));
  ASSERT_TRUE(compact_out.has_value());
  EXPECT_NE(compact_out->find("total: merged=2 evicted=0 dropped=0"),
            std::string::npos)
      << *compact_out;
  std::size_t cache_files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".rvcache") ++cache_files;
  }
  EXPECT_EQ(cache_files, 1u);
  // The warm merge replays every outcome from compact.rvcache alone
  // and reproduces the single-process bytes.
  const auto merged = run_and_capture(
      batch_cmd("merge --set-file '" + twin.string() + "' --cache-dir '" +
                dir + "' --require-all-hits"));
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(*merged, *single);
}

TEST(GoldenBatch, HostileShardSpecsAreRejectedUpFront) {
  if (!fs::exists(rv_batch_binary())) {
    GTEST_SKIP() << rv_batch_binary() << " not built";
  }
  // Regression: std::stoul's leniency let "-1/2" wrap to a huge shard
  // index and " 1/2"/"1x/2" slip through; the spec must be rejected
  // with a usage error before any work starts.
  const char* hostile[] = {"-1/2", " 1/2", "1/2x", "0x1/2",
                           "1//2", "1/",   "/2",   "1/0x2"};
  for (const char* spec : hostile) {
    const RunStatus status = run_status(
        batch_cmd("run --set linear-line --shard '" + std::string(spec) +
                  "' 2>&1"));
    EXPECT_EQ(status.code, 1) << "spec '" << spec << "'";
    EXPECT_NE(status.stdout_text.find("--shard expects I/N"),
              std::string::npos)
        << "spec '" << spec << "': " << status.stdout_text;
  }
  // The boundary cases still parse: 0/1 runs everything.
  const auto ok = run_and_capture(
      batch_cmd("run --set linear-line --shard 0/1"));
  EXPECT_TRUE(ok.has_value());
}

TEST(GoldenBatch, FlagsOutsideTheSubcommandContractAreRejected) {
  if (!fs::exists(rv_batch_binary())) {
    GTEST_SKIP() << rv_batch_binary() << " not built";
  }
  // Regression: `cache-stats`/`compact` silently ignored --set and
  // --set-file, and `merge` silently ignored the fork-only supervisor
  // knobs — a typo'd invocation looked successful while doing
  // something else.  Every flag a subcommand does not consume is now
  // a usage error (exit 1) naming the flag and the subcommand.
  Scratch scratch;
  const std::string dir = (scratch.path / "cache").string();
  const struct {
    const char* args;
    const char* flag;
    const char* subcommand;
  } hostile[] = {
      {"cache-stats --cache-dir 'DIR' --set linear-line", "--set",
       "cache-stats"},
      {"cache-stats --cache-dir 'DIR' --set-file x.rvset", "--set-file",
       "cache-stats"},
      {"compact --cache-dir 'DIR' --set linear-line", "--set", "compact"},
      {"compact --cache-dir 'DIR' --format json", "--format", "compact"},
      {"merge --set linear-line --cache-dir 'DIR' --procs 2", "--procs",
       "merge"},
      {"merge --set linear-line --cache-dir 'DIR' --shard 0/2", "--shard",
       "merge"},
      {"merge --set linear-line --cache-dir 'DIR' --retries 2", "--retries",
       "merge"},
      {"merge --set linear-line --cache-dir 'DIR' --partial", "--partial",
       "merge"},
      {"merge --set linear-line --cache-dir 'DIR' --shard-timeout 1",
       "--shard-timeout", "merge"},
      {"list --format json", "--format", "list"},
      {"run --set linear-line --write-merged", "--write-merged", "run"},
      {"run --set linear-line --max-age-days 1", "--max-age-days", "run"},
  };
  for (const auto& sample : hostile) {
    std::string command = sample.args;
    const std::size_t at = command.find("DIR");
    if (at != std::string::npos) command.replace(at, 3, dir);
    const RunStatus status = run_status(batch_cmd(command + " 2>&1"));
    EXPECT_EQ(status.code, 1) << command;
    EXPECT_NE(status.stdout_text.find(std::string(sample.flag) +
                                      " does not apply to '" +
                                      sample.subcommand + "'"),
              std::string::npos)
        << command << ": " << status.stdout_text;
  }
  // The contract does not reject what each subcommand really takes:
  // the full run → cache-stats → compact → merge pipeline still works.
  const auto cold = run_and_capture(
      batch_cmd("run --set linear-line --cache-dir '" + dir + "'"));
  ASSERT_TRUE(cold.has_value());
  EXPECT_TRUE(run_and_capture(batch_cmd("cache-stats --cache-dir '" + dir +
                                        "'"))
                  .has_value());
  EXPECT_TRUE(run_and_capture(batch_cmd("compact --cache-dir '" + dir + "'"))
                  .has_value());
  const auto merged = run_and_capture(
      batch_cmd("merge --set linear-line --cache-dir '" + dir +
                "' --require-all-hits"));
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(*merged, *cold);
}

TEST(GoldenBatch, MalformedRvsetFileFailsWithUsageExitAndNamedLine) {
  if (!fs::exists(rv_batch_binary())) {
    GTEST_SKIP() << rv_batch_binary() << " not built";
  }
  Scratch scratch;
  const fs::path bad = scratch.path / "bad.rvset";
  std::ofstream(bad) << "[search]\ndistances = 1.0x\n";
  const RunStatus status = run_status(
      batch_cmd("run --set-file '" + bad.string() + "' 2>&1"));
  EXPECT_EQ(status.code, 1);
  EXPECT_NE(status.stdout_text.find("line 2"), std::string::npos)
      << status.stdout_text;
  EXPECT_NE(status.stdout_text.find("distances"), std::string::npos)
      << status.stdout_text;
}

TEST(GoldenBatch, ListedSetsArePinned) {
  if (!fs::exists(rv_batch_binary())) {
    GTEST_SKIP() << rv_batch_binary() << " not built";
  }
  const auto out = run_and_capture(batch_cmd("list"));
  if (out.has_value()) golden::compare(*out, "rv_batch/list.txt");
}

TEST(GoldenBatch, JsonEmissionMatchesPin) {
  if (!fs::exists(rv_batch_binary())) {
    GTEST_SKIP() << rv_batch_binary() << " not built";
  }
  const auto out =
      run_and_capture(batch_cmd("run --set linear-line --format json"));
  if (out.has_value()) golden::compare(*out, "rv_batch/linear-line.json");
}

}  // namespace
