// A1–A3 — ablations of the design choices DESIGN.md calls out.
//
//  A1: Algorithm 7's reverse pass (SearchAllRev) replaced by a second
//      forward pass — same durations, different placement of the
//      small/quick rounds within the active phase.
//  A2: Search(k) without the terminal wait — breaks the Lemma 8
//      algebra; measures the schedule drift.
//  A3: annulus circle spacing c·ρ for c ∈ {1, 2, 3, 4} — c = 2 is the
//      paper's choice; c > 2 voids the coverage guarantee, c < 2 pays
//      extra time for redundant coverage.
//
// A1 (rendezvous cells with custom variant programs) and A3 (search
// cells with variant spacing, misses tolerated) are declarative
// `engine::ScenarioSet`s; A2 is pure schedule algebra (no simulation)
// and stays a closed-form loop.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"
#include "io/table.hpp"
#include "rendezvous/variants.hpp"
#include "search/times.hpp"
#include "search/variants.hpp"

int main() {
  using namespace rv;
  bench::banner("A1-A3", "ablations of the paper's design choices",
                "SearchAllRev (Fig. 3b), Search(k) terminal wait (Lemma 8), "
                "2rho circle spacing (Algorithm 2)");

  // --- A1: reverse pass ------------------------------------------------------
  {
    const double d = 1.0, r = 0.1;
    const std::vector<double> taus{0.5, 0.6, 0.75, 0.9};
    const rendezvous::ActivePhaseOrder orders[2] = {
        rendezvous::ActivePhaseOrder::kForwardThenReverse,
        rendezvous::ActivePhaseOrder::kForwardTwice};

    engine::ScenarioSet set;
    for (const double tau : taus) {
      for (const auto order : orders) {
        rendezvous::Scenario s;
        s.attrs.time_unit = tau;
        s.offset = {d, 0.0};
        s.visibility = r;
        s.max_time = 5e6;
        s.program = [order] {
          return rendezvous::make_variant_rendezvous_program(order);
        };
        s.program_name = order == rendezvous::ActivePhaseOrder::kForwardTwice
                             ? "algorithm7-fwd-fwd"
                             : "algorithm7-fwd-rev";
        set.add(s);
      }
    }
    const engine::ResultSet results = engine::run_scenarios(set);

    io::Table table({"tau", "fwd+rev t", "fwd+fwd t", "fwd+fwd / fwd+rev"});
    std::vector<io::CsvRow> csv;
    for (std::size_t i = 0; i < taus.size(); ++i) {
      // Two records per tau, in declaration order: fwd+rev then fwd+fwd.
      const sim::SimResult& fwd_rev = results[2 * i].outcome.sim;
      const sim::SimResult& fwd_fwd = results[2 * i + 1].outcome.sim;
      const bool ok = fwd_rev.met && fwd_fwd.met;
      const double times[2] = {fwd_rev.met ? fwd_rev.time : -1.0,
                               fwd_fwd.met ? fwd_fwd.time : -1.0};
      table.add_row({io::format_fixed(taus[i], 2),
                     ok ? io::format_fixed(times[0], 1) : "-",
                     times[1] >= 0 ? io::format_fixed(times[1], 1) : "MISS",
                     (ok && times[1] >= 0)
                         ? io::format_fixed(times[1] / times[0], 2) + "x"
                         : "-"});
      csv.push_back({io::format_double(taus[i]), io::format_double(times[0]),
                     io::format_double(times[1])});
    }
    table.print(std::cout,
                "A1 - active phase order (d = 1, r = 0.1, clocks only):");
    bench::dump_csv("a1_reverse_pass.csv", {"tau", "fwd_rev", "fwd_fwd"}, csv);
  }

  // --- A2: terminal wait ------------------------------------------------------
  {
    // The wait makes Search(k) last exactly 3(π+1)(k+1)2^{k+1}; without
    // it the round is shorter and the Lemma 8 schedule drifts.
    io::Table table({"k", "with wait", "without wait", "wait share",
                     "Lemma 2 formula"});
    std::vector<io::CsvRow> csv;
    for (int k = 1; k <= 8; ++k) {
      double with_wait = 0.0, without_wait = 0.0;
      for (const bool include_wait : {true, false}) {
        search::VariantOptions opts;
        opts.include_wait = include_wait;
        search::VariantRoundEmitter emitter(k, opts);
        double acc = 0.0;
        while (!emitter.done()) acc += traj::duration(emitter.next());
        // Account for the final emitted segment after done() flips —
        // VariantRoundEmitter returns the wait (or stand-in) as the
        // last next(); the loop above already consumed it.
        (include_wait ? with_wait : without_wait) = acc;
      }
      table.add_row(
          {std::to_string(k), io::format_fixed(with_wait, 2),
           io::format_fixed(without_wait, 2),
           io::format_fixed(100.0 * (with_wait - without_wait) / with_wait,
                            2) +
               "%",
           io::format_fixed(search::time_search_round(k), 2)});
      csv.push_back({std::to_string(k), io::format_double(with_wait),
                     io::format_double(without_wait)});
    }
    table.print(std::cout,
                "\nA2 - Search(k) terminal wait (the wait exists 'only to "
                "simplify algebra'):");
    bench::dump_csv("a2_terminal_wait.csv", {"k", "with", "without"}, csv);
  }

  // --- A3: circle spacing ------------------------------------------------------
  {
    const double d = 1.5, r = 0.05;
    const std::vector<double> spacings{1.0, 2.0, 3.0, 4.0};

    engine::ScenarioSet set;
    for (const double c : spacings) {
      search::VariantOptions vopts;
      vopts.spacing_factor = c;
      engine::SearchCell cell;
      cell.distance = d;
      cell.visibility = r;
      cell.angles = 8;
      cell.angle_offset = 0.11;
      cell.program_factory = [vopts] {
        return search::make_variant_search_program(vopts);
      };
      cell.program_name = "algorithm4-spacing";
      // Horizon: generous multiple of the c = 2 guarantee.
      cell.max_time =
          4.0 * search::time_first_rounds(search::guaranteed_round(d, r));
      set.add_search(cell);
    }
    const engine::ResultSet results = engine::run_scenarios(set);

    io::Table table({"spacing c", "found", "missed", "worst t (found)",
                     "t vs c=2"});
    std::vector<io::CsvRow> csv;
    double reference_time = 0.0;
    for (std::size_t i = 0; i < spacings.size(); ++i) {
      const double c = spacings[i];
      const engine::SearchOutcome& out = results[i].search_outcome;
      const int found = out.found;
      const int missed = out.missed;
      const double worst = out.worst_time;
      if (c == 2.0) reference_time = worst;
      table.add_row({io::format_fixed(c, 1), std::to_string(found),
                     std::to_string(missed),
                     found ? io::format_fixed(worst, 1) : "-",
                     (found && reference_time > 0.0)
                         ? io::format_fixed(worst / reference_time, 2) + "x"
                         : "-"});
      csv.push_back({io::format_double(c), std::to_string(found),
                     std::to_string(missed), io::format_double(worst)});
    }
    table.print(std::cout,
                "\nA3 - circle spacing c*rho (8 target angles, d = 1.5, "
                "r = 0.05):");
    bench::dump_csv("a3_spacing.csv", {"c", "found", "missed", "worst_time"},
                    csv);
  }

  std::cout << "\nshape check: A1 - both orders still meet (the overlap "
               "machinery tolerates either), with order-dependent constants; "
               "A2 - the wait is a growing share of Search(k) but exists for "
               "algebraic convenience; A3 - c <= 2 keeps the per-round "
               "coverage guarantee (c = 1 pays extra time), c > 2 voids it, "
               "deferring discovery to later, costlier rounds (or past the "
               "horizon).\n";
  return 0;
}
