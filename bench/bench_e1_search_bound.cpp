// E1 — Theorem 1: measured search time vs the closed-form bound
// 6(π+1)·log₂(d²/r)·d²/r, swept over (d, r) and target angles.
//
// The paper proves the bound analytically; this bench regenerates the
// "table" the theorem implies: one row per (d, r) with the worst
// measured time over a ring of target angles, the bound, and the
// measured/bound ratio (< 1 everywhere the bound applies).
//
// The sweep is a declarative search-family `engine::ScenarioSet` — the
// (d, r) grid, the applicability filter, and the per-cell theorem
// horizon are data; the 16-angle ring and its worst-over-angles
// reduction run inside the engine's `Runner`.  This file only declares
// the grid and reports.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"
#include "io/table.hpp"
#include "search/times.hpp"
#include "viz/ascii.hpp"
#include "viz/chart.hpp"

int main() {
  using namespace rv;
  bench::banner("E1", "universal search vs Theorem 1 bound",
                "Theorem 1 (search time bound), Lemma 3 (ratio lower bound)");

  constexpr int kAngles = 16;

  engine::SearchCell base;
  base.angles = kAngles;
  base.angle_offset = 0.03;
  engine::ScenarioSet set;
  set.search_base(base)
      .search_distances({1.0, 1.5, 2.0, 3.0, 4.0, 6.0})
      .search_radii({0.5, 0.25, 0.125, 0.0625, 0.03125})
      .search_filter([](const engine::SearchCell& c) {
        return search::theorem1_bound_applicable(c.distance, c.visibility);
      })
      .search_horizon([](const engine::SearchCell& c) {
        return search::theorem1_bound(c.distance, c.visibility) + 1.0;
      });

  const engine::ResultSet results = engine::run_scenarios(set);

  io::Table table({"d", "r", "d^2/r", "worst t", "mean t", "bound",
                   "worst/bound", "guar. round"});
  std::vector<io::CsvRow> csv;
  std::vector<double> xs, ys_measured, ys_bound;

  for (const engine::RunRecord& rec : results) {
    const double d = rec.search.distance;
    const double r = rec.search.visibility;
    const engine::SearchOutcome& out = rec.search_outcome;
    if (!out.complete) {
      std::cerr << "UNEXPECTED MISS d=" << d << " r=" << r
                << " ang=" << out.first_miss_angle << '\n';
      return 1;
    }
    const double bound = search::theorem1_bound(d, r);
    const double ratio = d * d / r;
    table.add_row({io::format_fixed(d, 2), io::format_fixed(r, 4),
                   io::format_fixed(ratio, 1),
                   io::format_fixed(out.worst_time, 1),
                   io::format_fixed(out.mean_time, 1),
                   io::format_fixed(bound, 1),
                   bench::ratio_str(out.worst_time, bound),
                   std::to_string(search::guaranteed_round(d, r))});
    csv.push_back({io::format_double(d), io::format_double(r),
                   io::format_double(ratio),
                   io::format_double(out.worst_time),
                   io::format_double(out.mean_time), io::format_double(bound)});
    xs.push_back(ratio);
    ys_measured.push_back(out.worst_time);
    ys_bound.push_back(bound);
  }

  table.print(std::cout,
              "worst-case measured search time over " +
                  std::to_string(kAngles) + " target angles vs Theorem 1:");

  viz::AsciiSeries measured{xs, ys_measured, '*', "worst measured"};
  viz::AsciiSeries bound_series{xs, ys_bound, '+', "Theorem 1 bound"};
  std::cout << "\nsearch time vs d^2/r (log-log):\n"
            << viz::ascii_scatter({measured, bound_series}, 18, 70, true, true);

  bench::dump_csv("e1_search_bound.csv",
                  {"d", "r", "ratio", "worst_time", "mean_time", "bound"}, csv);

  // Publication-style SVG of the same figure.
  {
    viz::ChartOptions copts;
    copts.title = "E1: search time vs d^2/r (Theorem 1)";
    copts.x_label = "d^2/r";
    copts.y_label = "time";
    copts.log_x = true;
    copts.log_y = true;
    viz::ChartSeries measured_s{xs, ys_measured, "#1f77b4",
                                "worst measured", false, true};
    viz::ChartSeries bound_s{xs, ys_bound, "#d62728", "Theorem 1 bound",
                             false, true};
    const auto chart = viz::render_chart({measured_s, bound_s}, copts);
    const auto path = bench::results_dir() / "e1_search_bound.svg";
    chart.save(path.string());
    std::cout << "[svg] " << path.string() << '\n';
  }

  std::cout << "\nshape check: every measured/bound ratio < 1 — the bound "
               "holds; time scales ~ (d^2/r)·log(d^2/r).\n";
  return 0;
}
