#pragma once

/// \file bench_common.hpp
/// Shared plumbing for the experiment binaries: output directory
/// handling, CSV dumping, and a uniform banner so `bench_output.txt`
/// reads as a single report.

#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "io/csv.hpp"
#include "io/table.hpp"

namespace rv::bench {

/// Directory where benches drop their CSV artifacts.
inline std::filesystem::path results_dir() {
  const std::filesystem::path dir = "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

/// Prints the experiment banner.
inline void banner(const std::string& id, const std::string& title,
                   const std::string& paper_artifact) {
  std::cout << "\n================================================================\n"
            << id << " — " << title << '\n'
            << "reproduces: " << paper_artifact << '\n'
            << "================================================================\n";
}

/// Writes a table's rows as CSV next to the printed output.
inline void dump_csv(const std::string& filename,
                     const rv::io::CsvRow& header,
                     const std::vector<rv::io::CsvRow>& rows) {
  const auto path = results_dir() / filename;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << '\n';
    return;
  }
  rv::io::CsvWriter writer(out);
  writer.header(header);
  for (const auto& row : rows) writer.row(row);
  std::cout << "[csv] " << path.string() << " (" << rows.size() << " rows)\n";
}

/// Formats a ratio as e.g. "0.43x"; reports "n/a" instead of dividing
/// by a zero/non-finite bound (which would print "infx"/"nanx").
inline std::string ratio_str(double measured, double bound) {
  if (bound == 0.0 || !std::isfinite(measured / bound)) return "n/a";
  return rv::io::format_fixed(measured / bound, 3) + "x";
}

}  // namespace rv::bench
