// E3 — Theorem 2, χ = +1: rendezvous time of Algorithm 4 under
// symmetric clocks, swept over speed v and orientation φ.  The driver
// is µ = √(v² − 2v·cosφ + 1): the bound scales as (d²/µr)·log(d²/µr).
//
// Regenerated content: for each (v, φ) the measured meeting time, the
// Theorem 2 bound, and their ratio; plus the µ → time anticorrelation
// (larger µ ⇒ faster rendezvous).

#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "mathx/constants.hpp"
#include "geom/difference_map.hpp"
#include "io/table.hpp"
#include "rendezvous/core.hpp"
#include "search/times.hpp"
#include "viz/ascii.hpp"

int main() {
  using namespace rv;
  bench::banner("E3", "symmetric clocks, common chirality (chi=+1)",
                "Theorem 2 (chi = 1 branch), Lemma 6");

  const double d = 2.0, r = 0.25;
  const std::vector<double> speeds{0.25, 0.5, 1.0, 1.5, 2.0, 4.0};
  const std::vector<double> phis{0.0, mathx::kPi / 4.0, mathx::kPi / 2.0,
                                 mathx::kPi, 3.0 * mathx::kPi / 2.0};

  io::Table table({"v", "phi", "mu", "t meet", "Thm2 bound", "t/bound",
                   "applicable"});
  std::vector<io::CsvRow> csv;
  std::vector<double> mus, times;

  for (const double v : speeds) {
    for (const double phi : phis) {
      const double mu = geom::mu(v, phi);
      if (mu < 1e-9) {
        table.add_row({io::format_fixed(v, 2), io::format_fixed(phi, 3),
                       "0", "-", "-", "-", "infeasible"});
        continue;
      }
      geom::RobotAttributes a;
      a.speed = v;
      a.orientation = phi;
      const double bound = analysis::theorem2_bound(a, d, r);
      const double guarantee = analysis::theorem2_guaranteed_time(a, d, r);
      rendezvous::Scenario s;
      s.attrs = a;
      s.offset = {d, 0.0};
      s.visibility = r;
      s.algorithm = rendezvous::AlgorithmChoice::kAlgorithm4;
      s.max_time = std::max(bound, guarantee) + 1.0;
      const auto out = rendezvous::run_scenario(s);
      if (!out.sim.met) {
        std::cerr << "UNEXPECTED MISS v=" << v << " phi=" << phi << '\n';
        return 1;
      }
      const bool applicable =
          search::theorem1_bound_applicable(d / mu, r / mu);
      table.add_row({io::format_fixed(v, 2), io::format_fixed(phi, 3),
                     io::format_fixed(mu, 3), io::format_fixed(out.sim.time, 2),
                     io::format_fixed(bound, 1),
                     bench::ratio_str(out.sim.time, bound),
                     applicable ? "yes" : "no"});
      csv.push_back({io::format_double(v), io::format_double(phi),
                     io::format_double(mu), io::format_double(out.sim.time),
                     io::format_double(bound)});
      mus.push_back(mu);
      times.push_back(out.sim.time);
    }
  }

  table.print(std::cout, "Algorithm 4 rendezvous, d = 2, r = 0.25:");

  std::cout << "\nmeeting time vs mu (log-log; expect downward trend — "
               "bigger frame mismatch = faster symmetry breaking):\n"
            << viz::ascii_scatter({{mus, times, '*', "measured"}}, 16, 70,
                                  true, true);

  bench::dump_csv("e3_symmetric_chirality.csv",
                  {"v", "phi", "mu", "time", "bound"}, csv);
  std::cout << "\nshape check: time <= bound on applicable instances; time "
               "decreases as mu grows; v=1, phi=0 is the infeasible corner.\n";
  return 0;
}
