// E3 — Theorem 2, χ = +1: rendezvous time of Algorithm 4 under
// symmetric clocks, swept over speed v and orientation φ.  The driver
// is µ = √(v² − 2v·cosφ + 1): the bound scales as (d²/µr)·log(d²/µr).
//
// Regenerated content: for each (v, φ) the measured meeting time, the
// Theorem 2 bound, and their ratio; plus the µ → time anticorrelation
// (larger µ ⇒ faster rendezvous).
//
// The sweep itself is a declarative `engine::ScenarioSet` executed by
// the parallel `engine::Runner`; this file only declares the grid and
// reports.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"
#include "geom/difference_map.hpp"
#include "io/table.hpp"
#include "mathx/constants.hpp"
#include "rendezvous/core.hpp"
#include "search/times.hpp"
#include "viz/ascii.hpp"

int main() {
  using namespace rv;
  bench::banner("E3", "symmetric clocks, common chirality (chi=+1)",
                "Theorem 2 (chi = 1 branch), Lemma 6");

  const double d = 2.0, r = 0.25;

  engine::ScenarioSet set;
  set.speeds({0.25, 0.5, 1.0, 1.5, 2.0, 4.0})
      .orientations({0.0, mathx::kPi / 4.0, mathx::kPi / 2.0, mathx::kPi,
                     3.0 * mathx::kPi / 2.0})
      .distances({d})
      .visibility(r)
      .algorithm(rendezvous::AlgorithmChoice::kAlgorithm4)
      .filter([](const rendezvous::Scenario& s) {
        // Drop the infeasible corner (v = 1, phi = 0): mu = 0.
        return geom::mu(s.attrs.speed, s.attrs.orientation) >= 1e-9;
      })
      .horizon([&](const rendezvous::Scenario& s) {
        return std::max(analysis::theorem2_bound(s.attrs, d, r),
                        analysis::theorem2_guaranteed_time(s.attrs, d, r)) +
               1.0;
      });

  const engine::ResultSet results = engine::run_scenarios(set);

  io::Table table({"v", "phi", "mu", "t meet", "Thm2 bound", "t/bound",
                   "applicable"});
  std::vector<io::CsvRow> csv;
  std::vector<double> mus, times;

  for (const engine::RunRecord& rec : results) {
    const double v = rec.scenario.attrs.speed;
    const double phi = rec.scenario.attrs.orientation;
    const double mu = geom::mu(v, phi);
    const double bound = analysis::theorem2_bound(rec.scenario.attrs, d, r);
    if (!rec.outcome.sim.met) {
      std::cerr << "UNEXPECTED MISS v=" << v << " phi=" << phi << '\n';
      return 1;
    }
    const bool applicable = search::theorem1_bound_applicable(d / mu, r / mu);
    table.add_row({io::format_fixed(v, 2), io::format_fixed(phi, 3),
                   io::format_fixed(mu, 3),
                   io::format_fixed(rec.outcome.sim.time, 2),
                   io::format_fixed(bound, 1),
                   bench::ratio_str(rec.outcome.sim.time, bound),
                   applicable ? "yes" : "no"});
    csv.push_back({io::format_double(v), io::format_double(phi),
                   io::format_double(mu),
                   io::format_double(rec.outcome.sim.time),
                   io::format_double(bound)});
    mus.push_back(mu);
    times.push_back(rec.outcome.sim.time);
  }

  table.print(std::cout,
              "Algorithm 4 rendezvous, d = 2, r = 0.25 (v = 1, phi = 0 "
              "omitted: mu = 0, infeasible):");

  std::cout << "\nmeeting time vs mu (log-log; expect downward trend — "
               "bigger frame mismatch = faster symmetry breaking):\n"
            << viz::ascii_scatter({{mus, times, '*', "measured"}}, 16, 70,
                                  true, true);

  bench::dump_csv("e3_symmetric_chirality.csv",
                  {"v", "phi", "mu", "time", "bound"}, csv);
  std::cout << "\nshape check: time <= bound on applicable instances; time "
               "decreases as mu grows; v=1, phi=0 is the infeasible corner.\n";
  return 0;
}
