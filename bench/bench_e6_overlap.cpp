// E6 — Figure 3 + Lemmas 9/10: how the active phase of one robot comes
// to overlap the inactive phase of the other, and how the overlap
// grows without bound — the engine of Theorem 3.
//
// Regenerated content: for a grid of clock ratios τ, the per-round
// overlap between R's active phases and R′'s inactive phases (computed
// from the exact schedule algebra), the lemma windows that predict
// which (k, a) pairs overlap, and a Gantt SVG in the style of
// Figure 3's two panels.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "io/table.hpp"
#include "mathx/binary.hpp"
#include "rendezvous/schedule.hpp"
#include "viz/ascii.hpp"
#include "viz/gantt.hpp"

int main() {
  using namespace rv;
  bench::banner("E6", "active/inactive phase overlap growth",
                "Figure 3, Lemma 9, Lemma 10");

  const std::vector<double> taus{0.5, 0.6, 2.0 / 3.0, 0.75, 0.9};

  io::Table table({"tau", "t", "a", "k", "overlap(k)", "overlap(k+2)",
                   "overlap(k+4)", "S(k)"});
  std::vector<io::CsvRow> csv;

  for (const double tau : taus) {
    const auto dec = mathx::dyadic_decompose(tau);
    // First round with a positive overlap against any peer inactive
    // phase.
    int k0 = 0;
    for (int k = 1; k <= 40 && k0 == 0; ++k) {
      if (rendezvous::best_overlap_with_inactive(k, tau)) k0 = k;
    }
    if (k0 == 0) {
      std::cerr << "no overlap found for tau=" << tau << '\n';
      return 1;
    }
    auto overlap_at = [&](int k) {
      const auto best = rendezvous::best_overlap_with_inactive(k, tau);
      return best ? best->length() : 0.0;
    };
    table.add_row({io::format_fixed(tau, 4), io::format_fixed(dec.t, 4),
                   std::to_string(dec.a), std::to_string(k0),
                   io::format_fixed(overlap_at(k0), 1),
                   io::format_fixed(overlap_at(k0 + 2), 1),
                   io::format_fixed(overlap_at(k0 + 4), 1),
                   io::format_fixed(rendezvous::search_all_time(k0), 1)});
    for (int k = k0; k <= k0 + 6; ++k) {
      csv.push_back({io::format_double(tau), std::to_string(k),
                     io::format_double(overlap_at(k))});
    }
  }
  table.print(std::cout,
              "overlap of R's active phase k with R''s inactive phases "
              "(global time units):");

  // Lemma 9/10 window verification: sampled τ in each window must give
  // the predicted positive overlap.
  io::Table t2({"lemma", "k", "a", "window lo", "window hi",
                "overlap at midpoint", "predicted"});
  for (const int k : {8, 12, 16}) {
    for (const int a : {0, 1}) {
      if (k < 2 * (a + 1)) continue;
      const auto w9 = rendezvous::lemma9_tau_window(k, a);
      const double tau9 = w9.midpoint();
      t2.add_row({"9", std::to_string(k), std::to_string(a),
                  io::format_fixed(w9.lo, 5), io::format_fixed(w9.hi, 5),
                  io::format_fixed(
                      rendezvous::best_overlap_with_inactive(k, tau9)
                          ? rendezvous::best_overlap_with_inactive(k, tau9)
                                ->length()
                          : 0.0,
                      1),
                  io::format_fixed(rendezvous::lemma9_overlap(tau9, k, a), 1)});
      const auto w10 = rendezvous::lemma10_tau_window(k, a);
      const double tau10 = w10.midpoint();
      t2.add_row(
          {"10", std::to_string(k), std::to_string(a),
           io::format_fixed(w10.lo, 5), io::format_fixed(w10.hi, 5),
           io::format_fixed(
               rendezvous::best_overlap_with_inactive(k - 1, tau10)
                   ? rendezvous::best_overlap_with_inactive(k - 1, tau10)
                         ->length()
                   : 0.0,
               1),
           io::format_fixed(rendezvous::lemma10_overlap(tau10, k, a), 1)});
    }
  }
  t2.print(std::cout, "\nLemma 9/10 window checks (tau at window midpoint):");

  // Figure 3 regenerated as a Gantt chart for tau = 0.6.
  {
    const double tau = 0.6;
    std::vector<viz::GanttRow> rows(2);
    rows[0].label = "R active";
    rows[1].label = "R' inactive";
    std::vector<viz::HighlightWindow> highlights;
    for (int n = 1; n <= 8; ++n) {
      const auto act = rendezvous::active_phase_global(n, 1.0);
      const auto inact = rendezvous::inactive_phase_global(n, tau);
      rows[0].phases.push_back({act.lo, act.hi, viz::PhaseKind::kActive, n});
      rows[1].phases.push_back(
          {inact.lo, inact.hi, viz::PhaseKind::kInactive, n});
      const auto best = rendezvous::best_overlap_with_inactive(n, tau);
      if (best) {
        highlights.push_back({best->lo, best->hi, "#d62728", ""});
      }
    }
    viz::GanttOptions gopt;
    gopt.time_min = 1.0;
    const auto canvas = viz::render_gantt(rows, highlights, gopt);
    const auto path = bench::results_dir() / "e6_figure3_overlap.svg";
    canvas.save(path.string());
    std::cout << "\n[svg] " << path.string()
              << " (regenerated Figure 3: shaded overlap windows)\n";
  }

  bench::dump_csv("e6_overlap.csv", {"tau", "k", "overlap"}, csv);
  std::cout << "\nshape check: for every tau < 1 the overlap appears by some "
               "round k0 and then grows without bound (Lemmas 9/10); it "
               "eventually exceeds S(n) for any fixed n, forcing rendezvous "
               "(Theorem 3).\n";
  return 0;
}
