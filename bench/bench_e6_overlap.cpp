// E6 — Figure 3 + Lemmas 9/10: how the active phase of one robot comes
// to overlap the inactive phase of the other, and how the overlap
// grows without bound — the engine of Theorem 3.
//
// Regenerated content: for a grid of clock ratios τ, the per-round
// overlap between R's active phases and R′'s inactive phases (computed
// from the exact schedule algebra), the lemma windows that predict
// which (k, a) pairs overlap, and a Gantt SVG in the style of
// Figure 3's two panels.
//
// Both tables are *components-only* rendezvous-family
// `engine::ScenarioSet`s: the τ grid rides the engine's `time_units`
// axis and the per-cell overlap algebra is a component-times hook run
// by the deterministic `Runner`; the lemma-window rows are explicit
// cells with per-cell hooks.  This file only declares and formats.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"
#include "io/table.hpp"
#include "mathx/binary.hpp"
#include "rendezvous/schedule.hpp"
#include "viz/ascii.hpp"
#include "viz/gantt.hpp"

namespace {

double overlap_at(int k, double tau) {
  const auto best = rv::rendezvous::best_overlap_with_inactive(k, tau);
  return best ? best->length() : 0.0;
}

}  // namespace

int main() {
  using namespace rv;
  bench::banner("E6", "active/inactive phase overlap growth",
                "Figure 3, Lemma 9, Lemma 10");

  const std::vector<double> taus{0.5, 0.6, 2.0 / 3.0, 0.75, 0.9};

  // --- per-round overlap over the τ grid -----------------------------------
  engine::ScenarioSet grid;
  grid.components_only().time_units(taus).components(
      [](const rendezvous::Scenario& s, const rendezvous::Outcome&) {
        const double tau = s.attrs.time_unit;
        const auto dec = mathx::dyadic_decompose(tau);
        // First round with a positive overlap against any peer
        // inactive phase (k0 = 0 when none exists by round 40).
        int k0 = 0;
        for (int k = 1; k <= 40 && k0 == 0; ++k) {
          if (rendezvous::best_overlap_with_inactive(k, tau)) k0 = k;
        }
        engine::Components out{
            {"t", dec.t},
            {"a", static_cast<double>(dec.a)},
            {"k0", static_cast<double>(k0)},
            {"S", k0 > 0 ? rendezvous::search_all_time(k0) : 0.0}};
        for (int j = 0; j <= 6; ++j) {
          out.push_back({"ov" + std::to_string(j),
                         k0 > 0 ? overlap_at(k0 + j, tau) : 0.0});
        }
        return out;
      });

  const engine::ResultSet overlaps = engine::run_scenarios(grid);
  for (const engine::RunRecord& rec : overlaps) {
    if (engine::component_value(rec.components, "k0") == 0.0) {
      std::cerr << "no overlap found for tau=" << rec.scenario.attrs.time_unit
                << '\n';
      return 1;
    }
  }

  io::Table table({"tau", "t", "a", "k", "overlap(k)", "overlap(k+2)",
                   "overlap(k+4)", "S(k)"});
  std::vector<io::CsvRow> csv;
  for (const engine::RunRecord& rec : overlaps) {
    const double tau = rec.scenario.attrs.time_unit;
    const int k0 =
        static_cast<int>(engine::component_value(rec.components, "k0"));
    table.add_row(
        {io::format_fixed(tau, 4),
         io::format_fixed(engine::component_value(rec.components, "t"), 4),
         std::to_string(
             static_cast<int>(engine::component_value(rec.components, "a"))),
         std::to_string(k0),
         io::format_fixed(engine::component_value(rec.components, "ov0"), 1),
         io::format_fixed(engine::component_value(rec.components, "ov2"), 1),
         io::format_fixed(engine::component_value(rec.components, "ov4"), 1),
         io::format_fixed(engine::component_value(rec.components, "S"), 1)});
    for (int j = 0; j <= 6; ++j) {
      csv.push_back({io::format_double(tau), std::to_string(k0 + j),
                     io::format_double(engine::component_value(
                         rec.components, "ov" + std::to_string(j)))});
    }
  }
  table.print(std::cout,
              "overlap of R's active phase k with R''s inactive phases "
              "(global time units):");

  // Lemma 9/10 window verification: sampled τ in each window must give
  // the predicted positive overlap.
  engine::ScenarioSet windows;
  windows.components_only();
  for (const int k : {8, 12, 16}) {
    for (const int a : {0, 1}) {
      if (k < 2 * (a + 1)) continue;
      for (const int lemma : {9, 10}) {
        windows.add(
            rendezvous::Scenario{}, "",
            [lemma, k, a](const rendezvous::Scenario&,
                          const rendezvous::Outcome&) {
              const auto window = lemma == 9
                                      ? rendezvous::lemma9_tau_window(k, a)
                                      : rendezvous::lemma10_tau_window(k, a);
              const double tau = window.midpoint();
              const double predicted =
                  lemma == 9 ? rendezvous::lemma9_overlap(tau, k, a)
                             : rendezvous::lemma10_overlap(tau, k, a);
              return engine::Components{
                  {"lemma", static_cast<double>(lemma)},
                  {"k", static_cast<double>(k)},
                  {"a", static_cast<double>(a)},
                  {"lo", window.lo},
                  {"hi", window.hi},
                  {"overlap_mid", overlap_at(lemma == 9 ? k : k - 1, tau)},
                  {"predicted", predicted}};
            });
      }
    }
  }

  io::Table t2({"lemma", "k", "a", "window lo", "window hi",
                "overlap at midpoint", "predicted"});
  for (const engine::RunRecord& rec : engine::run_scenarios(windows)) {
    auto as_int = [&rec](const char* name) {
      return std::to_string(
          static_cast<int>(engine::component_value(rec.components, name)));
    };
    t2.add_row(
        {as_int("lemma"), as_int("k"), as_int("a"),
         io::format_fixed(engine::component_value(rec.components, "lo"), 5),
         io::format_fixed(engine::component_value(rec.components, "hi"), 5),
         io::format_fixed(
             engine::component_value(rec.components, "overlap_mid"), 1),
         io::format_fixed(engine::component_value(rec.components, "predicted"),
                          1)});
  }
  t2.print(std::cout, "\nLemma 9/10 window checks (tau at window midpoint):");

  // Figure 3 regenerated as a Gantt chart for tau = 0.6.
  {
    const double tau = 0.6;
    std::vector<viz::GanttRow> rows(2);
    rows[0].label = "R active";
    rows[1].label = "R' inactive";
    std::vector<viz::HighlightWindow> highlights;
    for (int n = 1; n <= 8; ++n) {
      const auto act = rendezvous::active_phase_global(n, 1.0);
      const auto inact = rendezvous::inactive_phase_global(n, tau);
      rows[0].phases.push_back({act.lo, act.hi, viz::PhaseKind::kActive, n});
      rows[1].phases.push_back(
          {inact.lo, inact.hi, viz::PhaseKind::kInactive, n});
      const auto best = rendezvous::best_overlap_with_inactive(n, tau);
      if (best) {
        highlights.push_back({best->lo, best->hi, "#d62728", ""});
      }
    }
    viz::GanttOptions gopt;
    gopt.time_min = 1.0;
    const auto canvas = viz::render_gantt(rows, highlights, gopt);
    const auto path = bench::results_dir() / "e6_figure3_overlap.svg";
    canvas.save(path.string());
    std::cout << "\n[svg] " << path.string()
              << " (regenerated Figure 3: shaded overlap windows)\n";
  }

  bench::dump_csv("e6_overlap.csv", {"tau", "k", "overlap"}, csv);
  std::cout << "\nshape check: for every tau < 1 the overlap appears by some "
               "round k0 and then grows without bound (Lemmas 9/10); it "
               "eventually exceeds S(n) for any fixed n, forcing rendezvous "
               "(Theorem 3).\n";
  return 0;
}
