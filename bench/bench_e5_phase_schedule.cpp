// E5 — Figures 1 & 2 + Lemma 8: the round structure of Algorithm 7.
//
// Figure 1 of the paper sketches three rounds (inactive | SearchAll |
// SearchAllRev); Figure 2 the structure of one active phase.  This
// bench regenerates both from *measured* data: it drives the real
// Algorithm 7 program, records the local times at which each phase
// begins, compares them against the closed forms I(n), A(n) of
// Lemma 8, and renders the schedule as a Gantt SVG.

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "io/table.hpp"
#include "rendezvous/algorithm7.hpp"
#include "rendezvous/schedule.hpp"
#include "viz/gantt.hpp"

int main() {
  using namespace rv;
  bench::banner("E5", "Algorithm 7 phase schedule (round structure)",
                "Figure 1, Figure 2, Lemma 8 (I(n), A(n)), Equation (1)");

  constexpr int kRounds = 10;

  // Drive the real program and capture its phase marks.
  traj::MarkRecorder rec;
  rendezvous::RendezvousProgram prog(&rec);
  while (prog.current_round() <= kRounds) (void)prog.next();

  io::Table table({"n", "measured I(n)", "Lemma 8 I(n)", "measured A(n)",
                   "Lemma 8 A(n)", "round len / 4S(n)"});
  std::vector<io::CsvRow> csv;
  for (int n = 1; n <= kRounds; ++n) {
    const auto* inact = rec.find("inactive " + std::to_string(n));
    const auto* act = rec.find("searchall " + std::to_string(n));
    const auto* next_inact = rec.find("inactive " + std::to_string(n + 1));
    if (!inact || !act || !next_inact) {
      std::cerr << "missing marks for round " << n << '\n';
      return 1;
    }
    const double round_len = next_inact->local_time - inact->local_time;
    table.add_row({std::to_string(n), io::format_fixed(inact->local_time, 1),
                   io::format_fixed(rendezvous::inactive_start(n), 1),
                   io::format_fixed(act->local_time, 1),
                   io::format_fixed(rendezvous::active_start(n), 1),
                   io::format_fixed(
                       round_len / (4.0 * rendezvous::search_all_time(n)), 6)});
    csv.push_back({std::to_string(n), io::format_double(inact->local_time),
                   io::format_double(rendezvous::inactive_start(n)),
                   io::format_double(act->local_time),
                   io::format_double(rendezvous::active_start(n))});
  }
  table.print(std::cout,
              "measured phase starts (driving the real Algorithm 7 "
              "program) vs Lemma 8 closed forms:");

  // Figure 1 regenerated: two robots' schedules on the global timeline
  // (reference robot and a tau = 1/2 robot), with Gantt output.
  const double tau2 = 0.5;
  std::vector<viz::GanttRow> rows(2);
  rows[0].label = "R (tau=1)";
  rows[1].label = "R' (tau=1/2)";
  for (int n = 1; n <= 6; ++n) {
    for (int robot = 0; robot < 2; ++robot) {
      const double tau = robot == 0 ? 1.0 : tau2;
      const auto inact = rendezvous::inactive_phase_global(n, tau);
      const auto act = rendezvous::active_phase_global(n, tau);
      rows[robot].phases.push_back(
          {inact.lo, inact.hi, viz::PhaseKind::kInactive, n});
      rows[robot].phases.push_back(
          {act.lo, act.hi, viz::PhaseKind::kActive, n});
    }
  }
  // Highlight the overlaps of R's active phases with R''s inactive ones.
  std::vector<viz::HighlightWindow> highlights;
  for (int k = 2; k <= 6; ++k) {
    const auto best = rendezvous::best_overlap_with_inactive(k, tau2);
    if (best) {
      highlights.push_back({best->lo, best->hi, "#d62728",
                            "overlap k=" + std::to_string(k)});
    }
  }
  viz::GanttOptions gopt;
  gopt.time_min = 1.0;
  const auto canvas = viz::render_gantt(rows, highlights, gopt);
  const auto svg_path = bench::results_dir() / "e5_figure1_schedule.svg";
  canvas.save(svg_path.string());
  std::cout << "\n[svg] " << svg_path.string()
            << " (regenerated Figure 1: phases + measured overlaps)\n";

  bench::dump_csv("e5_phase_schedule.csv",
                  {"n", "measured_I", "formula_I", "measured_A", "formula_A"},
                  csv);
  std::cout << "\nshape check: measured I(n)/A(n) match Lemma 8 to ~1e-12 "
               "relative; every round lasts exactly 4*S(n).\n";
  return 0;
}
