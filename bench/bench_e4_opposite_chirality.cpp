// E4 — Theorem 2, χ = −1: rendezvous under symmetric clocks with
// mirrored robots.  The driver is the worst-case direction gain 1 − v:
// as v → 1 the difference map degenerates and the time bound blows up
// as (d²/((1−v)r))·log(...); at v = 1 rendezvous becomes infeasible.
//
// Regenerated content: time vs v sweep (with the blow-up visible), a
// φ grid showing the bound is uniform over orientations, and an offset
// direction sweep probing Lemma 7's worst-case maximisation.
//
// Both sweeps are declarative `engine::ScenarioSet`s executed by the
// parallel `engine::Runner`; this file only declares grids and reports.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"
#include "geom/difference_map.hpp"
#include "io/table.hpp"
#include "mathx/constants.hpp"
#include "rendezvous/core.hpp"
#include "search/times.hpp"
#include "viz/ascii.hpp"
#include "viz/chart.hpp"

int main() {
  using namespace rv;
  bench::banner("E4", "symmetric clocks, opposite chirality (chi=-1)",
                "Theorem 2 (chi = -1 branch), Lemma 7");

  const double d = 2.0, r = 0.25;

  // --- speed sweep: the (1 − v) blow-up, worst over 8 offset directions ---
  const std::vector<double> speeds{0.2, 0.4, 0.6, 0.75, 0.9};
  std::vector<geom::Vec2> directions;
  for (int i = 0; i < 8; ++i) {
    directions.push_back(geom::polar(d, 2.0 * mathx::kPi * i / 8.0 + 0.05));
  }

  engine::ScenarioSet speed_sweep;
  {
    rendezvous::Scenario base;
    base.attrs.chirality = -1;
    base.attrs.orientation = 1.0;
    base.visibility = r;
    base.algorithm = rendezvous::AlgorithmChoice::kAlgorithm4;
    speed_sweep.base(base)
        .speeds(speeds)
        .offsets(directions)
        .horizon([&](const rendezvous::Scenario& s) {
          return std::max(analysis::theorem2_bound(s.attrs, d, r),
                          analysis::theorem2_guaranteed_time(s.attrs, d, r)) +
                 1.0;
        });
  }
  const engine::ResultSet swept = engine::run_scenarios(speed_sweep);

  io::Table t1({"v", "1-v", "worst t over dirs", "Thm2 bound", "t/bound"});
  std::vector<io::CsvRow> csv;
  std::vector<double> gains, times;
  // Records arrive in grid order: 8 consecutive directions per speed.
  for (std::size_t k = 0; k < speeds.size(); ++k) {
    const double v = speeds[k];
    geom::RobotAttributes a;
    a.speed = v;
    a.chirality = -1;
    a.orientation = 1.0;
    const double bound = analysis::theorem2_bound(a, d, r);
    double worst = 0.0;
    for (std::size_t i = 0; i < directions.size(); ++i) {
      const engine::RunRecord& rec = swept[k * directions.size() + i];
      if (!rec.outcome.sim.met) {
        std::cerr << "UNEXPECTED MISS v=" << v << " dir " << i << '\n';
        return 1;
      }
      worst = std::max(worst, rec.outcome.sim.time);
    }
    t1.add_row({io::format_fixed(v, 2), io::format_fixed(1.0 - v, 2),
                io::format_fixed(worst, 2), io::format_fixed(bound, 1),
                bench::ratio_str(worst, bound)});
    csv.push_back({io::format_double(v), io::format_double(worst),
                   io::format_double(bound)});
    gains.push_back(1.0 - v);
    times.push_back(worst);
  }
  t1.print(std::cout,
           "speed sweep (phi = 1, worst over 8 offset directions), d = 2, "
           "r = 0.25:");

  std::cout << "\nworst time vs (1 - v) (log-log; expect upward blow-up as "
               "v -> 1):\n"
            << viz::ascii_scatter({{gains, times, '*', "worst measured"}}, 14,
                                  70, true, true);

  // --- orientation grid at fixed v -----------------------------------------
  geom::RobotAttributes a;
  a.speed = 0.5;
  a.chirality = -1;
  const double bound_v = analysis::theorem2_bound(a, d, r);

  engine::ScenarioSet phi_sweep;
  {
    rendezvous::Scenario base;
    base.attrs = a;
    base.offset = {0.0, d};  // worst-ish direction for chi = -1
    base.visibility = r;
    base.algorithm = rendezvous::AlgorithmChoice::kAlgorithm4;
    phi_sweep.base(base)
        .orientations({0.0, 0.8, 1.6, 2.4, mathx::kPi, 4.0, 5.2})
        .horizon([&](const rendezvous::Scenario& s) {
          return std::max(bound_v,
                          analysis::theorem2_guaranteed_time(s.attrs, d, r)) +
                 1.0;
        });
  }
  const engine::ResultSet phis = engine::run_scenarios(phi_sweep);

  io::Table t2({"phi", "mu", "t meet", "bound (phi-free)"});
  for (const engine::RunRecord& rec : phis) {
    const double phi = rec.scenario.attrs.orientation;
    t2.add_row({io::format_fixed(phi, 2),
                io::format_fixed(geom::mu(0.5, phi), 3),
                rec.outcome.sim.met
                    ? io::format_fixed(rec.outcome.sim.time, 2)
                    : "MISS",
                io::format_fixed(bound_v, 1)});
  }
  t2.print(std::cout,
           "\norientation grid at v = 0.5 (Theorem 2's chi=-1 bound is "
           "independent of phi):");

  bench::dump_csv("e4_opposite_chirality.csv", {"v", "worst_time", "bound"},
                  csv);

  {
    viz::ChartOptions copts;
    copts.title = "E4: rendezvous time vs 1-v (chi = -1, Theorem 2)";
    copts.x_label = "1 - v";
    copts.y_label = "worst time";
    copts.log_x = true;
    copts.log_y = true;
    const auto chart = viz::render_chart(
        {viz::ChartSeries{gains, times, "#1f77b4", "worst measured", true,
                          true}},
        copts);
    const auto path = bench::results_dir() / "e4_opposite_chirality.svg";
    chart.save(path.string());
    std::cout << "[svg] " << path.string() << '\n';
  }
  std::cout << "\nshape check: time <= bound everywhere; worst time grows as "
               "v -> 1 (the 1/(1-v) blow-up of Theorem 2).\n";
  return 0;
}
