// E7 — Theorem 3 / Lemmas 11-13: full two-robot simulations of
// Algorithm 7 with asymmetric clocks.  For a τ = t·2⁻ᵃ grid, measures
// the actual meeting round and time and compares with the Lemma 13
// round bound k* and the Lemma 14 time bound I(k*+1).
//
// This is the paper's central claim made executable: with *only* the
// clocks different (identical speeds, compasses, chiralities), the
// robots still meet — and within the predicted round.
//
// The three case grids are declarative `engine::ScenarioSet`s executed
// by the parallel `engine::Runner`.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/competitive.hpp"
#include "bench_common.hpp"
#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"
#include "io/table.hpp"
#include "mathx/binary.hpp"
#include "mathx/constants.hpp"
#include "rendezvous/core.hpp"
#include "rendezvous/schedule.hpp"
#include "search/times.hpp"
#include "viz/ascii.hpp"

namespace {

// The Algorithm 7 round in progress at local time t (round n spans
// [I(n), I(n+1)) on the executing robot's clock).
int round_at_local_time(double t) {
  int n = 1;
  while (rv::rendezvous::inactive_start(n + 1) <= t) ++n;
  return n;
}

// A universal (Algorithm 7) scenario for relative attributes `a` with
// horizon = Theorem 3 bound + slack.
rv::rendezvous::Scenario universal_case(const rv::geom::RobotAttributes& a,
                                        double d, double r) {
  rv::rendezvous::Scenario s;
  s.attrs = a;
  s.offset = {d, 0.0};
  s.visibility = r;
  s.algorithm = rv::rendezvous::AlgorithmChoice::kAlgorithm7;
  s.max_time = rv::analysis::theorem3_bound(a.time_unit, d, r) + 1.0;
  return s;
}

}  // namespace

int main() {
  using namespace rv;
  bench::banner("E7", "asymmetric-clock rendezvous (Algorithm 7 end-to-end)",
                "Theorem 3, Lemmas 11-13 (round bound k*), Lemma 14");

  const double d = 1.0, r = 0.5;
  const int n_star = search::guaranteed_round(d, r);

  struct Case {
    double t;
    int a;
  };
  const std::vector<Case> grid{{0.5, 0}, {0.5, 1}, {0.5, 2}, {0.6, 0},
                               {0.6, 1}, {2.0 / 3.0, 0}, {0.75, 0},
                               {0.75, 1}, {0.9, 0}};

  engine::ScenarioSet tau_set;
  for (const Case c : grid) {
    geom::RobotAttributes a;
    a.time_unit = c.t * mathx::pow2(-c.a);
    tau_set.add(universal_case(a, d, r),
                io::format_fixed(c.t, 4) + "*2^-" + std::to_string(c.a));
  }
  const engine::ResultSet tau_results = engine::run_scenarios(tau_set);

  io::Table table({"tau", "t", "a", "meet time", "meet round", "k* (Lem 13)",
                   "time bound I(k*+1)", "time/bound"});
  std::vector<io::CsvRow> csv;
  std::vector<double> taus, rounds_measured, rounds_bound;

  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Case c = grid[i];
    const engine::RunRecord& rec = tau_results[i];
    const double tau = rec.scenario.attrs.time_unit;
    const int k_star = rendezvous::rendezvous_round_bound(tau, n_star);
    const double bound = analysis::theorem3_bound(tau, d, r);
    if (!rec.outcome.sim.met) {
      std::cerr << "UNEXPECTED MISS tau=" << tau << '\n';
      return 1;
    }
    // The searching (slower-clock) robot here is the reference robot;
    // its local clock is global time.
    const int meet_round = round_at_local_time(rec.outcome.sim.time);
    table.add_row({io::format_fixed(tau, 4), io::format_fixed(c.t, 4),
                   std::to_string(c.a),
                   io::format_fixed(rec.outcome.sim.time, 1),
                   std::to_string(meet_round), std::to_string(k_star),
                   io::format_fixed(bound, 1),
                   bench::ratio_str(rec.outcome.sim.time, bound)});
    csv.push_back({io::format_double(tau),
                   io::format_double(rec.outcome.sim.time),
                   std::to_string(meet_round), std::to_string(k_star),
                   io::format_double(bound)});
    taus.push_back(tau);
    rounds_measured.push_back(meet_round);
    rounds_bound.push_back(k_star);
  }
  table.print(std::cout,
              "identical robots except the clock (v = 1, phi = 0, chi = 1), "
              "d = 1, r = 0.5, stationary-find round n = " +
                  std::to_string(n_star) + ":");

  std::cout << "\nmeeting round vs tau ('*' measured, '+' Lemma 13 bound):\n"
            << viz::ascii_scatter(
                   {{taus, rounds_measured, '*', "measured round"},
                    {taus, rounds_bound, '+', "k* bound"}},
                   14, 70, false, false);

  // Clock + other attributes combined: Theorem 3 is insensitive to
  // speed/orientation/chirality (the proof only needs one robot to
  // find the other *stationary*).
  engine::ScenarioSet combo_set;
  for (const auto& [v, phi, chi] :
       std::vector<std::tuple<double, double, int>>{
           {2.0, 0.0, 1}, {0.5, 2.0, -1}, {1.0, mathx::kPi, -1}}) {
    geom::RobotAttributes a;
    a.time_unit = 0.5;
    a.speed = v;
    a.orientation = phi;
    a.chirality = chi;
    rendezvous::Scenario s = universal_case(a, d, r);
    s.max_time = 1e6;
    combo_set.add(s);
  }
  const engine::ResultSet combos = engine::run_scenarios(combo_set);

  io::Table t2({"tau", "v", "phi", "chi", "meet time", "met"});
  for (const engine::RunRecord& rec : combos) {
    const geom::RobotAttributes& a = rec.scenario.attrs;
    t2.add_row({"0.5", io::format_fixed(a.speed, 2),
                io::format_fixed(a.orientation, 2),
                std::to_string(a.chirality),
                rec.outcome.sim.met ? io::format_fixed(rec.outcome.sim.time, 1)
                                    : "-",
                rec.outcome.sim.met ? "yes" : "NO"});
  }
  t2.print(std::cout, "\ntau = 1/2 combined with other attribute differences:");

  bench::dump_csv("e7_asymmetric_clocks.csv",
                  {"tau", "time", "meet_round", "k_star", "bound"}, csv);

  // Harder instance: smaller r forces the schedule machinery to work
  // through more rounds before contact; also report the exact Lemma 12
  // (Lambert W) round bound next to Lemma 13's weakening, and the
  // competitive ratio against the offline optimum.
  {
    const double dh = 4.0, rh = 0.1;
    const int nh = search::guaranteed_round(dh, rh);

    engine::ScenarioSet hard_set;
    for (const double tau : {0.75, 0.8, 0.9}) {
      geom::RobotAttributes a;
      a.time_unit = tau;
      hard_set.add(universal_case(a, dh, rh));
    }
    const engine::ResultSet hard = engine::run_scenarios(hard_set);

    io::Table t3({"tau", "meet time", "meet round", "k* (Lem 13)",
                  "k exact (Lem 12, W)", "vs offline OPT"});
    for (const engine::RunRecord& rec : hard) {
      const double tau = rec.scenario.attrs.time_unit;
      if (!rec.outcome.sim.met) {
        std::cerr << "UNEXPECTED MISS (hard) tau=" << tau << '\n';
        return 1;
      }
      t3.add_row(
          {io::format_fixed(tau, 2),
           io::format_fixed(rec.outcome.sim.time, 1),
           std::to_string(round_at_local_time(rec.outcome.sim.time)),
           std::to_string(rendezvous::rendezvous_round_bound(tau, nh)),
           std::to_string(analysis::lemma12_exact_round_bound(tau, nh)),
           io::format_fixed(analysis::competitive_ratio(rec.outcome.sim.time,
                                                        dh, rh, 1.0),
                            1) +
               "x"});
    }
    t3.print(std::cout,
             "\nharder instance d = 4, r = 0.1 (stationary-find round n = " +
                 std::to_string(nh) + "), with the exact Lemma 12 bound:");
  }

  std::cout << "\nshape check: every case meets; measured round <= k*; the "
               "bound grows as tau -> 1 (t/(1-t) blow-up of Lemma 13); the "
               "exact Lambert-W form of Lemma 12 tracks Lemma 13 within a "
               "few rounds.\n";
  return 0;
}
