// E2 — Lemma 2: the closed-form running times of Algorithms 1–4 vs the
// durations of the actually generated trajectories.
//
// The paper's evaluation is its algebra; this bench mechanically
// verifies every line of Lemma 2 on real trajectories and prints the
// comparison table.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "mathx/binary.hpp"
#include "mathx/constants.hpp"
#include "io/table.hpp"
#include "search/emitter.hpp"
#include "search/paths.hpp"
#include "search/times.hpp"

int main() {
  using namespace rv;
  bench::banner("E2", "component running times vs Lemma 2 closed forms",
                "Lemma 2 (times of Algorithms 1-4), Equation (1)");

  // --- SearchCircle(δ) -----------------------------------------------------
  io::Table t1({"delta", "path duration", "2(pi+1)*delta", "rel err"});
  for (const double delta : {0.125, 0.5, 1.0, 2.0, 8.0}) {
    const double measured = search::search_circle_path(delta).duration();
    const double formula = search::time_search_circle(delta);
    t1.add_row({io::format_fixed(delta, 3), io::format_fixed(measured, 6),
                io::format_fixed(formula, 6),
                io::format_sci(std::abs(measured - formula) /
                                   std::max(1.0, formula),
                               2)});
  }
  t1.print(std::cout, "Algorithm 1 - SearchCircle:");

  // --- SearchAnnulus(δ1, δ2, ρ) -------------------------------------------
  io::Table t2({"d1", "d2", "rho", "path duration", "Lemma 2 formula",
                "rel err"});
  const struct {
    double d1, d2, rho;
  } annuli[] = {{0.5, 1.0, 0.125}, {1.0, 2.0, 0.0625}, {0.25, 0.5, 0.03125},
                {2.0, 4.0, 0.5}};
  for (const auto& a : annuli) {
    const double measured =
        search::search_annulus_path(a.d1, a.d2, a.rho).duration();
    const double formula = search::time_search_annulus(a.d1, a.d2, a.rho);
    t2.add_row({io::format_fixed(a.d1, 3), io::format_fixed(a.d2, 3),
                io::format_fixed(a.rho, 5), io::format_fixed(measured, 4),
                io::format_fixed(formula, 4),
                io::format_sci(std::abs(measured - formula) / formula, 2)});
  }
  t2.print(std::cout, "\nAlgorithm 2 - SearchAnnulus:");

  // --- Search(k) and prefix sums -------------------------------------------
  io::Table t3({"k", "emitted duration", "3(pi+1)(k+1)2^{k+1}", "rel err",
                "segments"});
  std::vector<io::CsvRow> csv;
  for (int k = 1; k <= 8; ++k) {
    search::SearchRoundEmitter emitter(k);
    double acc = 0.0;
    std::uint64_t segments = 0;
    while (!emitter.done()) {
      acc += traj::duration(emitter.next());
      ++segments;
    }
    const double formula = search::time_search_round(k);
    t3.add_row({std::to_string(k), io::format_fixed(acc, 2),
                io::format_fixed(formula, 2),
                io::format_sci(std::abs(acc - formula) / formula, 2),
                std::to_string(segments)});
    csv.push_back({std::to_string(k), io::format_double(acc),
                   io::format_double(formula), std::to_string(segments)});
  }
  t3.print(std::cout, "\nAlgorithm 3 - Search(k) (O(1)-memory emitter):");

  io::Table t4({"k", "sum of rounds 1..k", "3(pi+1)k*2^{k+2}", "S(k) of Eq.(1)"});
  double prefix = 0.0;
  for (int k = 1; k <= 10; ++k) {
    prefix += search::time_search_round(k);
    t4.add_row({std::to_string(k), io::format_fixed(prefix, 1),
                io::format_fixed(search::time_first_rounds(k), 1),
                io::format_fixed(12.0 * (mathx::kPi + 1.0) * k *
                                     mathx::pow2(k),
                                 1)});
  }
  t4.print(std::cout, "\nAlgorithm 4 prefix times (= S(k), Equation (1)):");

  bench::dump_csv("e2_component_times.csv",
                  {"k", "measured", "formula", "segments"}, csv);
  std::cout << "\nshape check: every relative error is ~1e-12 - the paper's "
               "algebra matches the generated trajectories exactly.\n";
  return 0;
}
