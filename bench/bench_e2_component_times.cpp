// E2 — Lemma 2: the closed-form running times of Algorithms 1–4 vs the
// durations of the actually generated trajectories.
//
// The paper's evaluation is its algebra; this bench mechanically
// verifies every line of Lemma 2 on real trajectories and prints the
// comparison table.
//
// Each sub-table is a *components-only* search-family
// `engine::ScenarioSet`: the parameter grid (δ, the annulus triples, k)
// is data, and the per-cell component-times hook computes the measured
// duration next to the Lemma 2 closed form inside the engine's
// deterministic `Runner`.  This file only declares the grids and
// formats the records.

#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"
#include "mathx/binary.hpp"
#include "mathx/constants.hpp"
#include "io/table.hpp"
#include "search/emitter.hpp"
#include "search/paths.hpp"
#include "search/times.hpp"

int main() {
  using namespace rv;
  bench::banner("E2", "component running times vs Lemma 2 closed forms",
                "Lemma 2 (times of Algorithms 1-4), Equation (1)");

  // --- SearchCircle(δ) -----------------------------------------------------
  engine::ScenarioSet circle;
  circle.components_only()
      .search_distances({0.125, 0.5, 1.0, 2.0, 8.0})
      .search_components([](const engine::SearchCell& c,
                            const engine::SearchOutcome&) {
        const double delta = c.distance;
        return engine::Components{
            {"measured", search::search_circle_path(delta).duration()},
            {"formula", search::time_search_circle(delta)}};
      });

  io::Table t1({"delta", "path duration", "2(pi+1)*delta", "rel err"});
  for (const engine::RunRecord& rec : engine::run_scenarios(circle)) {
    const double delta = rec.search.distance;
    const double measured = engine::component_value(rec.components, "measured");
    const double formula = engine::component_value(rec.components, "formula");
    t1.add_row({io::format_fixed(delta, 3), io::format_fixed(measured, 6),
                io::format_fixed(formula, 6),
                io::format_sci(std::abs(measured - formula) /
                                   std::max(1.0, formula),
                               2)});
  }
  t1.print(std::cout, "Algorithm 1 - SearchCircle:");

  // --- SearchAnnulus(δ1, δ2, ρ) -------------------------------------------
  engine::ScenarioSet annulus;
  annulus.components_only();
  const struct {
    double d1, d2, rho;
  } annuli[] = {{0.5, 1.0, 0.125}, {1.0, 2.0, 0.0625}, {0.25, 0.5, 0.03125},
                {2.0, 4.0, 0.5}};
  for (const auto& a : annuli) {
    annulus.add_search(
        engine::SearchCell{}, "",
        [a](const engine::SearchCell&, const engine::SearchOutcome&) {
          return engine::Components{
              {"d1", a.d1},
              {"d2", a.d2},
              {"rho", a.rho},
              {"measured",
               search::search_annulus_path(a.d1, a.d2, a.rho).duration()},
              {"formula", search::time_search_annulus(a.d1, a.d2, a.rho)}};
        });
  }

  io::Table t2({"d1", "d2", "rho", "path duration", "Lemma 2 formula",
                "rel err"});
  for (const engine::RunRecord& rec : engine::run_scenarios(annulus)) {
    const double measured = engine::component_value(rec.components, "measured");
    const double formula = engine::component_value(rec.components, "formula");
    t2.add_row({io::format_fixed(engine::component_value(rec.components, "d1"),
                                 3),
                io::format_fixed(engine::component_value(rec.components, "d2"),
                                 3),
                io::format_fixed(engine::component_value(rec.components, "rho"),
                                 5),
                io::format_fixed(measured, 4), io::format_fixed(formula, 4),
                io::format_sci(std::abs(measured - formula) / formula, 2)});
  }
  t2.print(std::cout, "\nAlgorithm 2 - SearchAnnulus:");

  // --- Search(k) and prefix sums -------------------------------------------
  engine::ScenarioSet rounds;
  rounds.components_only()
      .search_distances({1, 2, 3, 4, 5, 6, 7, 8})
      .search_components([](const engine::SearchCell& c,
                            const engine::SearchOutcome&) {
        const int k = static_cast<int>(c.distance);
        search::SearchRoundEmitter emitter(k);
        double acc = 0.0;
        std::uint64_t segments = 0;
        while (!emitter.done()) {
          acc += traj::duration(emitter.next());
          ++segments;
        }
        return engine::Components{
            {"measured", acc},
            {"formula", search::time_search_round(k)},
            {"segments", static_cast<double>(segments)}};
      });

  io::Table t3({"k", "emitted duration", "3(pi+1)(k+1)2^{k+1}", "rel err",
                "segments"});
  std::vector<io::CsvRow> csv;
  for (const engine::RunRecord& rec : engine::run_scenarios(rounds)) {
    const int k = static_cast<int>(rec.search.distance);
    const double acc = engine::component_value(rec.components, "measured");
    const double formula = engine::component_value(rec.components, "formula");
    const auto segments = static_cast<std::uint64_t>(
        engine::component_value(rec.components, "segments"));
    t3.add_row({std::to_string(k), io::format_fixed(acc, 2),
                io::format_fixed(formula, 2),
                io::format_sci(std::abs(acc - formula) / formula, 2),
                std::to_string(segments)});
    csv.push_back({std::to_string(k), io::format_double(acc),
                   io::format_double(formula), std::to_string(segments)});
  }
  t3.print(std::cout, "\nAlgorithm 3 - Search(k) (O(1)-memory emitter):");

  engine::ScenarioSet prefixes;
  prefixes.components_only()
      .search_distances({1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
      .search_components([](const engine::SearchCell& c,
                            const engine::SearchOutcome&) {
        const int k = static_cast<int>(c.distance);
        // Σ_{j≤k} in ascending j — the same accumulation order (and
        // therefore the same doubles) as the incremental sum the
        // pre-port loop carried across rows.
        double prefix = 0.0;
        for (int j = 1; j <= k; ++j) prefix += search::time_search_round(j);
        return engine::Components{
            {"prefix", prefix},
            {"first_rounds", search::time_first_rounds(k)},
            {"eq1", 12.0 * (mathx::kPi + 1.0) * k * mathx::pow2(k)}};
      });

  io::Table t4({"k", "sum of rounds 1..k", "3(pi+1)k*2^{k+2}", "S(k) of Eq.(1)"});
  for (const engine::RunRecord& rec : engine::run_scenarios(prefixes)) {
    const int k = static_cast<int>(rec.search.distance);
    t4.add_row(
        {std::to_string(k),
         io::format_fixed(engine::component_value(rec.components, "prefix"), 1),
         io::format_fixed(
             engine::component_value(rec.components, "first_rounds"), 1),
         io::format_fixed(engine::component_value(rec.components, "eq1"), 1)});
  }
  t4.print(std::cout, "\nAlgorithm 4 prefix times (= S(k), Equation (1)):");

  bench::dump_csv("e2_component_times.csv",
                  {"k", "measured", "formula", "segments"}, csv);
  std::cout << "\nshape check: every relative error is ~1e-12 - the paper's "
               "algebra matches the generated trajectories exactly.\n";
  return 0;
}
