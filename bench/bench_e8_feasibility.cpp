// E8 — Theorem 4: the feasibility characterisation, both directions.
//
//  * Feasible cells: run Algorithm 7 and report the meeting time.
//  * Infeasible cells: report the structural certificate (singular /
//    zero difference map, invariant separation component) plus a
//    long-horizon simulation whose minimum separation respects the
//    certified lower bound.  (Infeasibility cannot be *observed* in
//    finite time; the certificate is the paper's "only if" made
//    checkable.)
//
// The truth table is a declarative `engine::ScenarioSet`; the CSV is
// the engine `ResultSet`'s structured emission plus a derived
// lower-bound column.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"
#include "geom/difference_map.hpp"
#include "io/table.hpp"
#include "mathx/constants.hpp"
#include "rendezvous/core.hpp"
#include "rendezvous/feasibility.hpp"

int main() {
  using namespace rv;
  using rendezvous::FeasibilityClass;
  bench::banner("E8", "feasibility truth table (both directions)",
                "Theorem 4 (rendezvous feasible iff tau!=1 or v!=1 or "
                "(chi=1 and 0<phi<2pi))");

  struct Cell {
    double v, tau, phi;
    int chi;
  };
  const std::vector<Cell> cells{
      // feasible: clocks
      {1.0, 0.5, 0.0, 1},
      {1.0, 0.8, 0.0, -1},
      // feasible: speeds
      {2.0, 1.0, 0.0, 1},
      {0.5, 1.0, 0.0, -1},
      // feasible: orientation with common chirality
      {1.0, 1.0, mathx::kPi / 2.0, 1},
      {1.0, 1.0, mathx::kPi, 1},
      // infeasible: identical
      {1.0, 1.0, 0.0, 1},
      // infeasible: mirror (any phi)
      {1.0, 1.0, 0.0, -1},
      {1.0, 1.0, 1.0, -1},
      {1.0, 1.0, mathx::kPi, -1},
  };

  const geom::Vec2 offset{1.0, 0.4};
  const double r = 0.05;

  engine::ScenarioSet set;
  for (const Cell& c : cells) {
    rendezvous::Scenario s;
    s.attrs.speed = c.v;
    s.attrs.time_unit = c.tau;
    s.attrs.orientation = c.phi;
    s.attrs.chirality = c.chi;
    s.offset = offset;
    s.visibility = r;
    s.algorithm = rendezvous::AlgorithmChoice::kAlgorithm7;
    set.add(s);
  }
  // Long horizon for feasible cells (they must meet), shorter for the
  // infeasible ones (they only need to witness the invariant bound).
  set.horizon([](const rendezvous::Scenario& s) {
    return rendezvous::rendezvous_feasible(s.attrs) ? 1e6 : 3e4;
  });

  const engine::ResultSet results = engine::run_scenarios(set);

  const auto lower_bound_of = [&](const engine::RunRecord& rec) {
    return rendezvous::separation_lower_bound(rec.scenario.attrs, offset);
  };

  io::Table table({"v", "tau", "phi", "chi", "Theorem 4", "det T_circ",
                   "sep. lower bound", "sim outcome", "min sep seen"});

  for (const engine::RunRecord& rec : results) {
    const geom::RobotAttributes& a = rec.scenario.attrs;
    const bool feasible = rendezvous::is_feasible(rec.outcome.feasibility);
    const double det =
        a.time_unit == 1.0
            ? geom::difference_determinant(a.speed, a.orientation, a.chirality)
            : std::nan("");  // the tau != 1 case has no static T∘
    const double lower = lower_bound_of(rec);
    const auto& sim = rec.outcome.sim;

    std::string sim_outcome;
    if (sim.met) {
      sim_outcome = "met t=" + io::format_fixed(sim.time, 1);
    } else {
      sim_outcome = feasible ? "NOT MET (unexpected)" : "no meet (horizon)";
    }
    table.add_row({io::format_fixed(a.speed, 2),
                   io::format_fixed(a.time_unit, 2),
                   io::format_fixed(a.orientation, 3),
                   std::to_string(a.chirality),
                   feasible ? "feasible" : "INFEASIBLE",
                   std::isnan(det) ? "-" : io::format_fixed(det, 4),
                   io::format_fixed(lower, 4), sim_outcome,
                   io::format_fixed(sim.min_distance, 4)});

    // Consistency checks: feasible must meet, infeasible must respect
    // the invariant lower bound.
    if (feasible && !sim.met) {
      std::cerr << "ERROR: feasible cell failed to meet\n";
      return 1;
    }
    if (!feasible && sim.min_distance < lower - 1e-6) {
      std::cerr << "ERROR: infeasible cell violated its separation "
                   "certificate\n";
      return 1;
    }
  }

  table.print(std::cout,
              "attribute grid, offset (1.0, 0.4), r = 0.05, Algorithm 7:");

  // Structured emission: the engine's standard columns plus the derived
  // certificate column.
  const std::vector<engine::Column> extras{
      {"lower_bound", [&](const engine::RunRecord& rec) {
         return io::format_double(lower_bound_of(rec));
       }}};
  bench::dump_csv("e8_feasibility.csv", results.csv_header(extras),
                  results.csv_rows(extras));

  std::cout
      << "\nshape check: the three feasible families all meet; the identical "
         "cell keeps separation exactly |d|; the mirror cells keep the "
         "perpendicular separation component >= the certified invariant "
         "(det T_circ = 0 on every infeasible tau=1 cell).\n";
  return 0;
}
