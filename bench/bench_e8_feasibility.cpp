// E8 — Theorem 4: the feasibility characterisation, both directions.
//
//  * Feasible cells: run Algorithm 7 and report the meeting time.
//  * Infeasible cells: report the structural certificate (singular /
//    zero difference map, invariant separation component) plus a
//    long-horizon simulation whose minimum separation respects the
//    certified lower bound.  (Infeasibility cannot be *observed* in
//    finite time; the certificate is the paper's "only if" made
//    checkable.)

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "mathx/constants.hpp"
#include "geom/difference_map.hpp"
#include "io/table.hpp"
#include "rendezvous/core.hpp"
#include "rendezvous/feasibility.hpp"

int main() {
  using namespace rv;
  using rendezvous::FeasibilityClass;
  bench::banner("E8", "feasibility truth table (both directions)",
                "Theorem 4 (rendezvous feasible iff tau!=1 or v!=1 or "
                "(chi=1 and 0<phi<2pi))");

  struct Cell {
    double v, tau, phi;
    int chi;
  };
  const std::vector<Cell> cells{
      // feasible: clocks
      {1.0, 0.5, 0.0, 1},
      {1.0, 0.8, 0.0, -1},
      // feasible: speeds
      {2.0, 1.0, 0.0, 1},
      {0.5, 1.0, 0.0, -1},
      // feasible: orientation with common chirality
      {1.0, 1.0, mathx::kPi / 2.0, 1},
      {1.0, 1.0, mathx::kPi, 1},
      // infeasible: identical
      {1.0, 1.0, 0.0, 1},
      // infeasible: mirror (any phi)
      {1.0, 1.0, 0.0, -1},
      {1.0, 1.0, 1.0, -1},
      {1.0, 1.0, mathx::kPi, -1},
  };

  const geom::Vec2 offset{1.0, 0.4};
  const double r = 0.05;

  io::Table table({"v", "tau", "phi", "chi", "Theorem 4", "det T_circ",
                   "sep. lower bound", "sim outcome", "min sep seen"});
  std::vector<io::CsvRow> csv;

  for (const Cell& c : cells) {
    geom::RobotAttributes a;
    a.speed = c.v;
    a.time_unit = c.tau;
    a.orientation = c.phi;
    a.chirality = c.chi;
    const auto cls = rendezvous::classify(a);
    const bool feasible = rendezvous::is_feasible(cls);
    const double det =
        c.tau == 1.0
            ? geom::difference_determinant(c.v, c.phi, c.chi)
            : std::nan("");  // the tau != 1 case has no static T∘
    const double lower = rendezvous::separation_lower_bound(a, offset);

    rendezvous::Scenario s;
    s.attrs = a;
    s.offset = offset;
    s.visibility = r;
    s.algorithm = rendezvous::AlgorithmChoice::kAlgorithm7;
    s.max_time = feasible ? 1e6 : 3e4;  // long horizon for infeasible cells
    const auto out = rendezvous::run_scenario(s);

    std::string outcome;
    if (out.sim.met) {
      outcome = "met t=" + io::format_fixed(out.sim.time, 1);
    } else {
      outcome = feasible ? "NOT MET (unexpected)" : "no meet (horizon)";
    }
    table.add_row({io::format_fixed(c.v, 2), io::format_fixed(c.tau, 2),
                   io::format_fixed(c.phi, 3), std::to_string(c.chi),
                   feasible ? "feasible" : "INFEASIBLE",
                   std::isnan(det) ? "-" : io::format_fixed(det, 4),
                   io::format_fixed(lower, 4), outcome,
                   io::format_fixed(out.sim.min_distance, 4)});
    csv.push_back({io::format_double(c.v), io::format_double(c.tau),
                   io::format_double(c.phi), std::to_string(c.chi),
                   feasible ? "1" : "0", out.sim.met ? "1" : "0",
                   io::format_double(out.sim.min_distance),
                   io::format_double(lower)});

    // Consistency checks: feasible must meet, infeasible must respect
    // the invariant lower bound.
    if (feasible && !out.sim.met) {
      std::cerr << "ERROR: feasible cell failed to meet\n";
      return 1;
    }
    if (!feasible && out.sim.min_distance < lower - 1e-6) {
      std::cerr << "ERROR: infeasible cell violated its separation "
                   "certificate\n";
      return 1;
    }
  }

  table.print(std::cout,
              "attribute grid, offset (1.0, 0.4), r = 0.05, Algorithm 7:");

  bench::dump_csv("e8_feasibility.csv",
                  {"v", "tau", "phi", "chi", "feasible", "met", "min_sep",
                   "lower_bound"},
                  csv);
  std::cout
      << "\nshape check: the three feasible families all meet; the identical "
         "cell keeps separation exactly |d|; the mirror cells keep the "
         "perpendicular separation component >= the certified invariant "
         "(det T_circ = 0 on every infeasible tau=1 cell).\n";
  return 0;
}
