// X1 — exploratory extension: N-robot gathering (the paper's future
// work, Section 5).  NOT a reproduction — the paper proves nothing for
// N > 2; this experiment reports what the paper's own universal
// algorithm does when N robots with pairwise-distinct attributes all
// run it.
//
// Observations this experiment surfaces:
//  * first contact between *some* pair happens quickly whenever at
//    least two robots differ (Theorem 4 applies pairwise);
//  * simultaneous all-pairs gathering is much harder: pairs meet at
//    different times/places and drift apart again — exactly why the
//    paper lists gathering as an open problem.

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "mathx/constants.hpp"
#include "gather/multi_simulator.hpp"
#include "io/table.hpp"
#include "rendezvous/algorithm7.hpp"

int main() {
  using namespace rv;
  bench::banner("X1", "N-robot gathering (exploratory extension)",
                "Section 5 future work: 'deterministic gathering for "
                "multiple robots in this setting'");

  struct Fleet {
    const char* label;
    std::vector<geom::RobotAttributes> attrs;
  };

  auto mk = [](double v, double tau) {
    geom::RobotAttributes a;
    a.speed = v;
    a.time_unit = tau;
    return a;
  };

  const std::vector<Fleet> fleets{
      {"3 robots, distinct speeds", {mk(1.0, 1.0), mk(1.5, 1.0), mk(2.0, 1.0)}},
      {"3 robots, distinct clocks", {mk(1.0, 1.0), mk(1.0, 0.5), mk(1.0, 0.75)}},
      {"4 robots, mixed", {mk(1.0, 1.0), mk(2.0, 1.0), mk(1.0, 0.5),
                           mk(1.5, 0.75)}},
      {"3 identical robots", {mk(1.0, 1.0), mk(1.0, 1.0), mk(1.0, 1.0)}},
  };

  io::Table table({"fleet", "N", "first contact t", "pair", "all-pairs t",
                   "min max-pairwise seen"});
  std::vector<io::CsvRow> csv;

  for (const Fleet& fleet : fleets) {
    const std::size_t n = fleet.attrs.size();
    // Place robots on a ring of radius 1.
    std::vector<geom::Vec2> origins;
    for (std::size_t i = 0; i < n; ++i) {
      origins.push_back(
          geom::polar(1.0, 2.0 * mathx::kPi * static_cast<double>(i) /
                               static_cast<double>(n)));
    }
    auto factory = [] { return rendezvous::make_rendezvous_program(); };

    gather::GatherOptions contact_opts;
    contact_opts.sweep.visibility = 0.2;
    contact_opts.sweep.max_time = 1e5;
    contact_opts.mode = gather::GatherMode::kFirstContact;
    const auto contact =
        gather::simulate_gathering(factory, fleet.attrs, origins, contact_opts);

    gather::GatherOptions gather_opts = contact_opts;
    gather_opts.mode = gather::GatherMode::kAllPairsGathered;
    gather_opts.sweep.max_time = 2e5;
    const auto gathered =
        gather::simulate_gathering(factory, fleet.attrs, origins, gather_opts);

    std::string pair_label = "-";
    if (contact.achieved) {
      pair_label = "(";
      pair_label += std::to_string(contact.pair_i);
      pair_label += ",";
      pair_label += std::to_string(contact.pair_j);
      pair_label += ")";
    }
    table.add_row(
        {fleet.label, std::to_string(n),
         contact.achieved ? io::format_fixed(contact.time, 1) : "none",
         pair_label,
         gathered.achieved ? io::format_fixed(gathered.time, 1)
                           : "not in horizon",
         io::format_fixed(gathered.min_max_pairwise, 3)});
    csv.push_back({fleet.label, std::to_string(n),
                   io::format_double(contact.achieved ? contact.time : -1.0),
                   io::format_double(gathered.achieved ? gathered.time : -1.0),
                   io::format_double(gathered.min_max_pairwise)});
  }

  table.print(std::cout,
              "fleets on a unit ring, r = 0.2, all running Algorithm 7:");

  bench::dump_csv("x1_gathering.csv",
                  {"fleet", "n", "first_contact", "all_pairs", "min_max_pair"},
                  csv);
  std::cout
      << "\nobservations (extension, not reproduction): pairwise contact "
         "follows from Theorem 4 whenever some pair differs; simultaneous "
         "gathering may or may not occur — the open problem the paper "
         "leaves.  Identical fleets never reduce their configuration (all "
         "separations invariant), matching the Theorem 4 'only if'.\n";
  return 0;
}
