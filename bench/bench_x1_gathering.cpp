// X1 — exploratory extension: N-robot gathering (the paper's future
// work, Section 5).  NOT a reproduction — the paper proves nothing for
// N > 2; this experiment reports what the paper's own universal
// algorithm does when N robots with pairwise-distinct attributes all
// run it.
//
// Observations this experiment surfaces:
//  * first contact between *some* pair happens quickly whenever at
//    least two robots differ (Theorem 4 applies pairwise);
//  * simultaneous all-pairs gathering is much harder: pairs meet at
//    different times/places and drift apart again — exactly why the
//    paper lists gathering as an open problem.
//
// Each fleet is a gather-family cell of a declarative
// `engine::ScenarioSet`; the engine runs both certified sweeps (first
// contact and all-pairs) per cell.

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"
#include "io/table.hpp"

int main() {
  using namespace rv;
  bench::banner("X1", "N-robot gathering (exploratory extension)",
                "Section 5 future work: 'deterministic gathering for "
                "multiple robots in this setting'");

  struct Fleet {
    const char* label;
    std::vector<geom::RobotAttributes> attrs;
  };

  auto mk = [](double v, double tau) {
    geom::RobotAttributes a;
    a.speed = v;
    a.time_unit = tau;
    return a;
  };

  const std::vector<Fleet> fleets{
      {"3 robots, distinct speeds", {mk(1.0, 1.0), mk(1.5, 1.0), mk(2.0, 1.0)}},
      {"3 robots, distinct clocks", {mk(1.0, 1.0), mk(1.0, 0.5), mk(1.0, 0.75)}},
      {"4 robots, mixed", {mk(1.0, 1.0), mk(2.0, 1.0), mk(1.0, 0.5),
                           mk(1.5, 0.75)}},
      {"3 identical robots", {mk(1.0, 1.0), mk(1.0, 1.0), mk(1.0, 1.0)}},
  };

  engine::ScenarioSet set;
  for (const Fleet& fleet : fleets) {
    engine::GatherCell cell;
    cell.fleet = fleet.attrs;
    cell.ring_radius = 1.0;
    cell.visibility = 0.2;
    cell.algorithm = rendezvous::AlgorithmChoice::kAlgorithm7;
    cell.contact_max_time = 1e5;
    cell.gather_max_time = 2e5;
    set.add_gather(cell, fleet.label);
  }

  const engine::ResultSet results = engine::run_scenarios(set);

  io::Table table({"fleet", "N", "first contact t", "pair", "all-pairs t",
                   "min max-pairwise seen"});
  std::vector<io::CsvRow> csv;

  for (const engine::RunRecord& rec : results) {
    const std::size_t n = rec.gather.fleet.size();
    const gather::GatherResult& contact = rec.gather_outcome.contact;
    const gather::GatherResult& gathered = rec.gather_outcome.gathered;
    std::string pair_label = "-";
    if (contact.achieved) {
      pair_label = "(";
      pair_label += std::to_string(contact.pair_i);
      pair_label += ",";
      pair_label += std::to_string(contact.pair_j);
      pair_label += ")";
    }
    table.add_row(
        {rec.label, std::to_string(n),
         contact.achieved ? io::format_fixed(contact.time, 1) : "none",
         pair_label,
         gathered.achieved ? io::format_fixed(gathered.time, 1)
                           : "not in horizon",
         io::format_fixed(gathered.min_max_pairwise, 3)});
    csv.push_back({rec.label, std::to_string(n),
                   io::format_double(contact.achieved ? contact.time : -1.0),
                   io::format_double(gathered.achieved ? gathered.time : -1.0),
                   io::format_double(gathered.min_max_pairwise)});
  }

  table.print(std::cout,
              "fleets on a unit ring, r = 0.2, all running Algorithm 7:");

  bench::dump_csv("x1_gathering.csv",
                  {"fleet", "n", "first_contact", "all_pairs", "min_max_pair"},
                  csv);
  std::cout
      << "\nobservations (extension, not reproduction): pairwise contact "
         "follows from Theorem 4 whenever some pair differs; simultaneous "
         "gathering may or may not occur — the open problem the paper "
         "leaves.  Identical fleets never reduce their configuration (all "
         "separations invariant), matching the Theorem 4 'only if'.\n";
  return 0;
}
