// E9 — baseline comparison: Algorithm 4 vs two doubling baselines
// (concentric sweep, square spiral) on the E1 search workload.
//
// Stands in for the comparison against the optimal-search result the
// paper cites as [25] (Pelc 2018, no public code).  The shape to
// reproduce: Algorithm 4's decoupled (d, r) coverage wins increasingly
// as d²/r grows unbalanced, because the baselines couple range and
// granularity (Θ(8^m) per doubling round).
//
// Each (instance, program) pair is a search-family cell of one
// declarative `engine::ScenarioSet`; the engine's worst-over-angles
// reducer replaces the per-program loop this bench used to hand-roll.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"
#include "io/table.hpp"
#include "viz/ascii.hpp"

int main() {
  using namespace rv;
  bench::banner("E9", "Algorithm 4 vs doubling baselines",
                "related-work comparison (Pelc [25] stand-ins); Theorem 1 "
                "asymptotics");

  struct Instance {
    double d, r;
  };
  // Balanced instances (d ~ 1/r) and unbalanced ones (the regime where
  // Algorithm 4's decoupling pays).
  const std::vector<Instance> instances{
      {1.0, 0.5},  {1.0, 0.25}, {2.0, 0.25},  {2.0, 0.125},
      {4.0, 0.25}, {4.0, 0.125}, {6.0, 0.125}, {3.0, 0.03125}};
  const std::vector<engine::SearchProgram> programs{
      engine::SearchProgram::kAlgorithm4, engine::SearchProgram::kConcentric,
      engine::SearchProgram::kSquareSpiral};

  engine::ScenarioSet set;
  for (const Instance& inst : instances) {
    for (const engine::SearchProgram prog : programs) {
      engine::SearchCell cell;
      cell.distance = inst.d;
      cell.visibility = inst.r;
      cell.angles = 8;
      cell.angle_offset = 0.07;
      cell.program = prog;
      cell.max_time = 5e6;
      set.add_search(cell);
    }
  }

  const engine::ResultSet results = engine::run_scenarios(set);

  io::Table table({"d", "r", "d^2/r", "Algorithm 4", "concentric",
                   "square spiral", "best baseline / Alg4"});
  std::vector<io::CsvRow> csv;
  std::vector<double> xs, alg4_t, conc_t, spiral_t;

  for (std::size_t i = 0; i < instances.size(); ++i) {
    const Instance& inst = instances[i];
    // One record per program, in declaration order.
    const engine::SearchOutcome& alg4 = results[3 * i].search_outcome;
    const engine::SearchOutcome& conc = results[3 * i + 1].search_outcome;
    const engine::SearchOutcome& spiral = results[3 * i + 2].search_outcome;
    if (!alg4.complete || !conc.complete || !spiral.complete) {
      std::cerr << "UNEXPECTED MISS on d=" << inst.d << " r=" << inst.r
                << '\n';
      return 1;
    }
    const double t4 = alg4.worst_time;
    const double tc = conc.worst_time;
    const double ts = spiral.worst_time;
    const double best_baseline = std::min(tc, ts);
    table.add_row({io::format_fixed(inst.d, 2), io::format_fixed(inst.r, 4),
                   io::format_fixed(inst.d * inst.d / inst.r, 1),
                   io::format_fixed(t4, 1), io::format_fixed(tc, 1),
                   io::format_fixed(ts, 1),
                   io::format_fixed(best_baseline / t4, 2) + "x"});
    csv.push_back({io::format_double(inst.d), io::format_double(inst.r),
                   io::format_double(t4), io::format_double(tc),
                   io::format_double(ts)});
    xs.push_back(inst.d * inst.d / inst.r);
    alg4_t.push_back(t4);
    conc_t.push_back(tc);
    spiral_t.push_back(ts);
  }

  table.print(std::cout,
              "worst measured search time over 8 target angles (horizon "
              "5e6):");

  std::cout << "\nsearch time vs d^2/r (log-log; '*' Alg4, 'o' concentric, "
               "'+' square spiral):\n"
            << viz::ascii_scatter({{xs, alg4_t, '*', "Algorithm 4"},
                                   {xs, conc_t, 'o', "concentric"},
                                   {xs, spiral_t, '+', "square spiral"}},
                                  16, 70, true, true);

  bench::dump_csv("e9_baselines.csv",
                  {"d", "r", "alg4", "concentric", "square_spiral"}, csv);
  std::cout << "\nshape check: Algorithm 4 is never asymptotically worse and "
               "pulls ahead on unbalanced instances (large d with small r), "
               "where the coupled doubling baselines pay Theta(8^m) rounds.\n";
  return 0;
}
