// E9 — baseline comparison: Algorithm 4 vs two doubling baselines
// (concentric sweep, square spiral) on the E1 search workload.
//
// Stands in for the comparison against the optimal-search result the
// paper cites as [25] (Pelc 2018, no public code).  The shape to
// reproduce: Algorithm 4's decoupled (d, r) coverage wins increasingly
// as d²/r grows unbalanced, because the baselines couple range and
// granularity (Θ(8^m) per doubling round).

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "mathx/constants.hpp"
#include "io/table.hpp"
#include "mathx/stats.hpp"
#include "search/algorithm4.hpp"
#include "search/baselines.hpp"
#include "search/times.hpp"
#include "sim/simulator.hpp"
#include "viz/ascii.hpp"

namespace {

double worst_time(const std::function<std::shared_ptr<rv::traj::Program>()>&
                      make_program,
                  double d, double r, double horizon) {
  rv::mathx::RunningStats stats;
  for (int a = 0; a < 8; ++a) {
    const double ang = 2.0 * rv::mathx::kPi * a / 8.0 + 0.07;
    rv::sim::SimOptions opts;
    opts.visibility = r;
    opts.max_time = horizon;
    const auto res =
        rv::sim::simulate_search(make_program(), rv::geom::polar(d, ang), opts);
    if (!res.met) return -1.0;
    stats.add(res.time);
  }
  return stats.max();
}

}  // namespace

int main() {
  using namespace rv;
  bench::banner("E9", "Algorithm 4 vs doubling baselines",
                "related-work comparison (Pelc [25] stand-ins); Theorem 1 "
                "asymptotics");

  struct Instance {
    double d, r;
  };
  // Balanced instances (d ~ 1/r) and unbalanced ones (the regime where
  // Algorithm 4's decoupling pays).
  const std::vector<Instance> instances{
      {1.0, 0.5},  {1.0, 0.25}, {2.0, 0.25},  {2.0, 0.125},
      {4.0, 0.25}, {4.0, 0.125}, {6.0, 0.125}, {3.0, 0.03125}};

  io::Table table({"d", "r", "d^2/r", "Algorithm 4", "concentric",
                   "square spiral", "best baseline / Alg4"});
  std::vector<io::CsvRow> csv;
  std::vector<double> xs, alg4_t, conc_t, spiral_t;

  for (const Instance& inst : instances) {
    const double horizon = 5e6;
    const double t4 = worst_time([] { return search::make_search_program(); },
                                 inst.d, inst.r, horizon);
    const double tc =
        worst_time([] { return search::make_concentric_baseline(); }, inst.d,
                   inst.r, horizon);
    const double ts =
        worst_time([] { return search::make_square_spiral_baseline(); },
                   inst.d, inst.r, horizon);
    if (t4 < 0.0 || tc < 0.0 || ts < 0.0) {
      std::cerr << "UNEXPECTED MISS on d=" << inst.d << " r=" << inst.r
                << '\n';
      return 1;
    }
    const double best_baseline = std::min(tc, ts);
    table.add_row({io::format_fixed(inst.d, 2), io::format_fixed(inst.r, 4),
                   io::format_fixed(inst.d * inst.d / inst.r, 1),
                   io::format_fixed(t4, 1), io::format_fixed(tc, 1),
                   io::format_fixed(ts, 1),
                   io::format_fixed(best_baseline / t4, 2) + "x"});
    csv.push_back({io::format_double(inst.d), io::format_double(inst.r),
                   io::format_double(t4), io::format_double(tc),
                   io::format_double(ts)});
    xs.push_back(inst.d * inst.d / inst.r);
    alg4_t.push_back(t4);
    conc_t.push_back(tc);
    spiral_t.push_back(ts);
  }

  table.print(std::cout,
              "worst measured search time over 8 target angles (horizon "
              "5e6):");

  std::cout << "\nsearch time vs d^2/r (log-log; '*' Alg4, 'o' concentric, "
               "'+' square spiral):\n"
            << viz::ascii_scatter({{xs, alg4_t, '*', "Algorithm 4"},
                                   {xs, conc_t, 'o', "concentric"},
                                   {xs, spiral_t, '+', "square spiral"}},
                                  16, 70, true, true);

  bench::dump_csv("e9_baselines.csv",
                  {"d", "r", "alg4", "concentric", "square_spiral"}, csv);
  std::cout << "\nshape check: Algorithm 4 is never asymptotically worse and "
               "pulls ahead on unbalanced instances (large d with small r), "
               "where the coupled doubling baselines pay Theta(8^m) rounds.\n";
  return 0;
}
