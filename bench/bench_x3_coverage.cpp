// X3 — coverage accounting: the area argument behind the Ω(d²/r)
// search lower bound ([25], quoted in Section 2), measured.
//
// A robot with visibility r sweeps ≤ 2r of new area per unit time;
// covering the disk of radius R therefore needs ≥ πR²/(2r).  This
// bench rasterises the r-neighbourhood actually swept by Algorithm 4
// and the baselines and reports (a) time to 99% coverage of the disk
// vs the area budget, and (b) sweep efficiency = covered area / (2r·t).
//
// The sweep is a declarative coverage-family `engine::ScenarioSet`: a
// program axis over a single (R, r) base cell, rasterised engine-side
// (`run_coverage_cell` returns the checkpoint series plus t50/t99).
// This file only declares the grid and reports.

#include <iostream>
#include <vector>

#include "analysis/coverage.hpp"
#include "bench_common.hpp"
#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"
#include "mathx/constants.hpp"
#include "io/table.hpp"
#include "search/times.hpp"
#include "viz/ascii.hpp"

int main() {
  using namespace rv;
  bench::banner("X3", "swept-area coverage accounting",
                "the area argument behind the Omega(d^2/r) lower bound "
                "([25] / Section 2)");

  const double R = 2.0;
  const double r = 0.1;
  const double budget = analysis::area_budget_time(R, r);

  engine::CoverageCell base;
  base.disk_radius = R;
  base.visibility = r;
  base.cell = 0.02;
  base.checkpoints = 48;
  engine::ScenarioSet set;
  set.coverage_base(base)
      .coverage_programs({engine::SearchProgram::kAlgorithm4,
                          engine::SearchProgram::kConcentric,
                          engine::SearchProgram::kSquareSpiral})
      .coverage_horizon([](const engine::CoverageCell& c) {
        // Generous horizon: several times the Theorem 1 time for the
        // worst (d = R) instance.
        return 4.0 * search::time_first_rounds(
                         search::guaranteed_round(c.disk_radius,
                                                  c.visibility));
      })
      .coverage_label([](const engine::CoverageCell& c) {
        switch (c.program) {
          case engine::SearchProgram::kAlgorithm4: return "Algorithm 4";
          case engine::SearchProgram::kConcentric:
            return "concentric baseline";
          case engine::SearchProgram::kSquareSpiral:
            return "square spiral baseline";
        }
        return "?";
      });

  const engine::ResultSet results = engine::run_scenarios(set);

  io::Table table({"strategy", "t @ 50%", "t @ 99%", "area budget pi R^2/2r",
                   "99% / budget", "efficiency @ 99%"});
  std::vector<io::CsvRow> csv;
  std::vector<viz::AsciiSeries> curves;
  const char glyphs[3] = {'*', 'o', '+'};

  for (std::size_t ci = 0; ci < results.size(); ++ci) {
    const engine::CoverageOutcome& out = results[ci].coverage_outcome;
    const double t50 = out.t50;
    const double t99 = out.t99;
    const analysis::CoveragePoint* p99 =
        analysis::first_at_fraction(out.series, 0.99);
    const double eff99 =
        p99 ? p99->covered_area / (2.0 * r * p99->time) : 0.0;
    viz::AsciiSeries curve;
    curve.glyph = glyphs[ci % 3];
    curve.label = results[ci].label;
    for (const analysis::CoveragePoint& pt : out.series) {
      curve.x.push_back(pt.time);
      curve.y.push_back(pt.fraction);
    }
    curves.push_back(std::move(curve));
    table.add_row({results[ci].label,
                   t50 >= 0.0 ? io::format_fixed(t50, 0) : ">horizon",
                   t99 >= 0.0 ? io::format_fixed(t99, 0) : ">horizon",
                   io::format_fixed(budget, 0),
                   t99 >= 0.0 ? io::format_fixed(t99 / budget, 2) + "x" : "-",
                   t99 >= 0.0 ? io::format_fixed(eff99, 3) : "-"});
    csv.push_back({results[ci].label, io::format_double(t50),
                   io::format_double(t99), io::format_double(budget)});
  }

  table.print(std::cout,
              "coverage of the disk R = 2 at visibility r = 0.1 (grid cell "
              "0.02):");

  std::cout << "\ncoverage fraction vs time (linear axes):\n"
            << viz::ascii_scatter(curves, 16, 70, false, false);

  bench::dump_csv("x3_coverage.csv", {"strategy", "t50", "t99", "budget"},
                  csv);
  std::cout << "\nshape check: no strategy beats the area budget; all pay a "
               "sizeable factor over it because a *universal* strategy must "
               "re-sweep for every hypothesised (d, r) scale (that is the "
               "price Theorem 1's log factor and constants encode).  "
               "Algorithm 4 reaches 99% first and with the best sweep "
               "efficiency of the three.\n";
  return 0;
}
