// E10 — micro-benchmarks of the substrate (google-benchmark): segment
// evaluation, frame mapping, emitter throughput, contact sweeps,
// Lambert W, schedule algebra.  These quantify the simulator cost
// model used to size the E1-E9 experiments.

#include <benchmark/benchmark.h>

#include "mathx/constants.hpp"

#include <memory>

#include "engine/contact_sweep.hpp"
#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"
#include "geom/difference_map.hpp"
#include "mathx/lambert_w.hpp"
#include "rendezvous/algorithm7.hpp"
#include "rendezvous/schedule.hpp"
#include "search/algorithm4.hpp"
#include "search/emitter.hpp"
#include "sim/simulator.hpp"
#include "traj/frame.hpp"

namespace {

using rv::geom::RobotAttributes;
using rv::geom::Vec2;

void BM_SegmentEvalLine(benchmark::State& state) {
  const rv::traj::Segment seg = rv::traj::LineSeg{{0.0, 0.0}, {3.0, 4.0}};
  double t = 0.0;
  for (auto _ : state) {
    t += 0.1;
    if (t > 5.0) t = 0.0;
    benchmark::DoNotOptimize(rv::traj::position_at(seg, t));
  }
}
BENCHMARK(BM_SegmentEvalLine);

void BM_SegmentEvalArc(benchmark::State& state) {
  const rv::traj::Segment seg =
      rv::traj::ArcSeg{{0.0, 0.0}, 2.0, 0.0, rv::mathx::kTwoPi};
  double t = 0.0;
  for (auto _ : state) {
    t += 0.1;
    if (t > 12.0) t = 0.0;
    benchmark::DoNotOptimize(rv::traj::position_at(seg, t));
  }
}
BENCHMARK(BM_SegmentEvalArc);

void BM_FrameTransformSegment(benchmark::State& state) {
  RobotAttributes attrs;
  attrs.speed = 1.5;
  attrs.time_unit = 0.7;
  attrs.orientation = 1.2;
  attrs.chirality = -1;
  const rv::traj::Segment seg =
      rv::traj::ArcSeg{{1.0, 2.0}, 0.5, 0.3, rv::mathx::kPi};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rv::traj::to_global_geometry(seg, attrs, {3.0, 4.0}));
  }
}
BENCHMARK(BM_FrameTransformSegment);

void BM_SearchRoundEmitter(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    rv::search::SearchRoundEmitter emitter(k);
    std::uint64_t n = 0;
    while (!emitter.done()) {
      benchmark::DoNotOptimize(emitter.next());
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(
                              rv::search::SearchRoundEmitter(k)
                                  .total_segments()));
}
BENCHMARK(BM_SearchRoundEmitter)->Arg(3)->Arg(5)->Arg(7);

void BM_Algorithm7Emission(benchmark::State& state) {
  for (auto _ : state) {
    rv::rendezvous::RendezvousProgram prog;
    for (int i = 0; i < 10000; ++i) {
      benchmark::DoNotOptimize(prog.next());
    }
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_Algorithm7Emission);

void BM_ContactSweepSearch(benchmark::State& state) {
  for (auto _ : state) {
    rv::sim::SimOptions opts;
    opts.visibility = 0.25;
    opts.max_time = 1e5;
    const auto res = rv::sim::simulate_search(
        rv::search::make_search_program(), {1.3, 0.9}, opts);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_ContactSweepSearch);

void BM_ContactSweepGather(benchmark::State& state) {
  // The n-robot gathering sweep: n robots on a unit ring all running
  // Algorithm 7, max-pairwise metric.  The argument is the fleet size,
  // so the timings expose the O(n^2) pairwise metric loop that
  // dominates the gather family's cost.
  const int n = static_cast<int>(state.range(0));
  std::uint64_t evals = 0;
  for (auto _ : state) {
    std::vector<rv::engine::RobotSpec> robots;
    robots.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      RobotAttributes attrs;
      attrs.speed = 1.0 + 0.25 * i;
      robots.push_back({rv::rendezvous::make_rendezvous_program(), attrs,
                        rv::geom::polar(1.0, rv::mathx::kTwoPi * i / n)});
    }
    rv::engine::SweepOptions opts;
    opts.visibility = 0.2;
    opts.max_time = 200.0;
    rv::engine::ContactSweep sweep(std::move(robots),
                                   rv::engine::SweepMetric::kMaxPairwise,
                                   opts);
    const auto res = sweep.run();
    evals += res.evals;
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(evals) * n * (n - 1) / 2);
}
BENCHMARK(BM_ContactSweepGather)->Arg(3)->Arg(6)->Arg(10);

void BM_LambertW0(benchmark::State& state) {
  double x = 0.5;
  for (auto _ : state) {
    x = x < 1e6 ? x * 1.7 : 0.5;
    benchmark::DoNotOptimize(rv::mathx::lambert_w0(x));
  }
}
BENCHMARK(BM_LambertW0);

void BM_DifferenceFactorisation(benchmark::State& state) {
  double phi = 0.1;
  for (auto _ : state) {
    phi += 0.37;
    if (phi > 6.0) phi = 0.1;
    benchmark::DoNotOptimize(
        rv::geom::factor_difference_matrix(1.7, phi, -1));
  }
}
BENCHMARK(BM_DifferenceFactorisation);

void BM_EngineScenarioSweep(benchmark::State& state) {
  // A 16-cell attribute grid through the batch engine; the argument is
  // the worker-thread count, so the timings expose the sweep's
  // parallel scaling (CSV output is identical at every thread count).
  const unsigned threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    rv::engine::ScenarioSet set;
    set.speeds({0.5, 1.0, 2.0, 4.0})
        .time_units({0.5, 0.75})
        .chiralities({1, -1})
        .visibility(0.25)
        .algorithm(rv::rendezvous::AlgorithmChoice::kAlgorithm7)
        .max_time(2e3);
    rv::engine::RunnerOptions opts;
    opts.threads = threads;
    benchmark::DoNotOptimize(rv::engine::run_scenarios(set, opts));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_EngineScenarioSweep)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_RoundBound(benchmark::State& state) {
  double tau = 0.5;
  for (auto _ : state) {
    tau += 0.013;
    if (tau >= 0.99) tau = 0.31;
    benchmark::DoNotOptimize(rv::rendezvous::rendezvous_round_bound(tau, 6));
  }
}
BENCHMARK(BM_RoundBound);

}  // namespace

BENCHMARK_MAIN();
