// E10 — micro-benchmarks of the substrate (google-benchmark): segment
// evaluation, frame mapping, emitter throughput, contact sweeps,
// Lambert W, schedule algebra.  These quantify the simulator cost
// model used to size the E1-E9 experiments.

#include <benchmark/benchmark.h>

#include "mathx/constants.hpp"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "engine/contact_sweep.hpp"
#include "engine/metric_kernel.hpp"
#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"
#include "geom/difference_map.hpp"
#include "mathx/lambert_w.hpp"
#include "rendezvous/algorithm7.hpp"
#include "rendezvous/schedule.hpp"
#include "search/algorithm4.hpp"
#include "search/baselines.hpp"
#include "search/emitter.hpp"
#include "sim/simulator.hpp"
#include "traj/batch.hpp"
#include "traj/frame.hpp"

namespace {

using rv::geom::RobotAttributes;
using rv::geom::Vec2;

void BM_SegmentEvalLine(benchmark::State& state) {
  const rv::traj::Segment seg = rv::traj::LineSeg{{0.0, 0.0}, {3.0, 4.0}};
  double t = 0.0;
  for (auto _ : state) {
    t += 0.1;
    if (t > 5.0) t = 0.0;
    benchmark::DoNotOptimize(rv::traj::position_at(seg, t));
  }
}
BENCHMARK(BM_SegmentEvalLine);

void BM_SegmentEvalArc(benchmark::State& state) {
  const rv::traj::Segment seg =
      rv::traj::ArcSeg{{0.0, 0.0}, 2.0, 0.0, rv::mathx::kTwoPi};
  double t = 0.0;
  for (auto _ : state) {
    t += 0.1;
    if (t > 12.0) t = 0.0;
    benchmark::DoNotOptimize(rv::traj::position_at(seg, t));
  }
}
BENCHMARK(BM_SegmentEvalArc);

void BM_FrameTransformSegment(benchmark::State& state) {
  RobotAttributes attrs;
  attrs.speed = 1.5;
  attrs.time_unit = 0.7;
  attrs.orientation = 1.2;
  attrs.chirality = -1;
  const rv::traj::Segment seg =
      rv::traj::ArcSeg{{1.0, 2.0}, 0.5, 0.3, rv::mathx::kPi};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rv::traj::to_global_geometry(seg, attrs, {3.0, 4.0}));
  }
}
BENCHMARK(BM_FrameTransformSegment);

void BM_SearchRoundEmitter(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    rv::search::SearchRoundEmitter emitter(k);
    std::uint64_t n = 0;
    while (!emitter.done()) {
      benchmark::DoNotOptimize(emitter.next());
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(
                              rv::search::SearchRoundEmitter(k)
                                  .total_segments()));
}
BENCHMARK(BM_SearchRoundEmitter)->Arg(3)->Arg(5)->Arg(7);

void BM_Algorithm7Emission(benchmark::State& state) {
  for (auto _ : state) {
    rv::rendezvous::RendezvousProgram prog;
    for (int i = 0; i < 10000; ++i) {
      benchmark::DoNotOptimize(prog.next());
    }
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_Algorithm7Emission);

void BM_ContactSweepSearch(benchmark::State& state) {
  for (auto _ : state) {
    rv::sim::SimOptions opts;
    opts.visibility = 0.25;
    opts.max_time = 1e5;
    const auto res = rv::sim::simulate_search(
        rv::search::make_search_program(), {1.3, 0.9}, opts);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_ContactSweepSearch);

// A ring fleet with deterministic radial jitter — the gather family's
// layout, minus the exact regular-polygon symmetry that would make
// *every* antipodal pair tie for the diameter (an adversarial
// tie-resolution stress, not the generic case).
std::vector<Vec2> jittered_ring(int n) {
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  std::uint64_t s = 0x9E3779B97F4A7C15ULL;
  for (int i = 0; i < n; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    const double jitter =
        static_cast<double>((s >> 11) % 1024) / 1024.0 * 0.05;
    pts.push_back(
        rv::geom::polar(1.0 + jitter, rv::mathx::kTwoPi * i / n));
  }
  return pts;
}

// Shared driver of the n-robot gathering sweep benchmarks: n identical
// robots on a jittered unit ring all running the square-spiral
// trajectory, max-pairwise metric, swept with the requested kernel.
// The construction pins the measured work to the metric kernel: an
// identical fleet keeps every pairwise distance constant (the metric
// never events and the certified step is a fixed (m − r)/L),
// continuous line-based motion keeps L = 2 with cheap per-robot
// position evaluation and few segments — so the sweep performs the
// same capped eval count at every fleet size and both kernels are
// timed at identical eval counts.  (Algorithm 7 fleets are mostly
// *passive*: their sweeps window-jump through the long common waits
// in a dozen evaluations, measuring segment streaming instead of the
// kernel; arc-heavy Algorithm 4 fleets spend the time in per-robot
// trig.)
void run_gather_sweep_bench(benchmark::State& state, int n,
                            rv::engine::KernelChoice kernel,
                            rv::engine::SolverChoice solver =
                                rv::engine::SolverChoice::kBisection) {
  const std::vector<Vec2> origins = jittered_ring(n);
  std::uint64_t evals = 0;
  for (auto _ : state) {
    std::vector<rv::engine::RobotSpec> robots;
    robots.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      robots.push_back({rv::search::make_square_spiral_baseline(),
                        RobotAttributes{}, origins[static_cast<std::size_t>(i)]});
    }
    rv::engine::SweepOptions opts;
    // r at 95% of the *base* ring diameter (a lower bound on the
    // jittered fleet's constant diameter): the certified step
    // (m − r)/L stays small at every n, so the sweep spends its time
    // in metric evaluations rather than segment streaming.
    const double diam =
        2.0 * std::sin(rv::mathx::kPi * static_cast<double>(n / 2) / n);
    opts.visibility = 0.95 * diam;
    opts.max_time = 100.0;
    opts.kernel = kernel;
    opts.solver = solver;
    opts.max_evals = 2000;
    rv::engine::ContactSweep sweep(std::move(robots),
                                   rv::engine::SweepMetric::kMaxPairwise,
                                   opts);
    const auto res = sweep.run();
    evals += res.evals;
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(evals) * n * (n - 1) / 2);
}

void BM_ContactSweepGather(benchmark::State& state) {
  // The adaptive kernel (brute force below the cutover, convex hull +
  // rotating calipers above): the speedup curve over
  // BM_ContactSweepGatherBrute lands in BENCH_engine.json.
  run_gather_sweep_bench(state, static_cast<int>(state.range(0)),
                         rv::engine::KernelChoice::kAuto);
}
BENCHMARK(BM_ContactSweepGather)
    ->Arg(3)
    ->Arg(6)
    ->Arg(10)
    ->Arg(50)
    ->Arg(100)
    ->Arg(250)
    ->Arg(1000);

void BM_ContactSweepGatherBrute(benchmark::State& state) {
  // The forced O(n²) squared-distance loop at the same fleet sizes —
  // the baseline the adaptive kernel is measured against.
  run_gather_sweep_bench(state, static_cast<int>(state.range(0)),
                         rv::engine::KernelChoice::kBruteForce);
}
BENCHMARK(BM_ContactSweepGatherBrute)->Arg(50)->Arg(100)->Arg(250);

// Event solvers head to head on the same gather workload: the
// Lipschitz stepper burns its eval budget inching toward the constant
// diameter, while the analytic solver proves each window clear from
// the extremal pair's closed-form model and jumps window to window —
// the evals ratio is SweepResult::evals ≥ 5× (pinned by
// tests/test_event_solver.cpp), and the wall-time ratio lands in
// BENCH_engine.json per fleet size.
void BM_EventSolverBisect(benchmark::State& state) {
  run_gather_sweep_bench(state, static_cast<int>(state.range(0)),
                         rv::engine::KernelChoice::kAuto,
                         rv::engine::SolverChoice::kBisection);
}
void BM_EventSolverAnalytic(benchmark::State& state) {
  run_gather_sweep_bench(state, static_cast<int>(state.range(0)),
                         rv::engine::KernelChoice::kAuto,
                         rv::engine::SolverChoice::kAnalytic);
}
BENCHMARK(BM_EventSolverBisect)->Arg(3)->Arg(10)->Arg(50)->Arg(250)->Arg(1000);
BENCHMARK(BM_EventSolverAnalytic)
    ->Arg(3)
    ->Arg(10)
    ->Arg(50)
    ->Arg(250)
    ->Arg(1000);

// The SoA batched position evaluator on the gather fleet's current
// segments: one switch-driven pass over n robots per query versus the
// per-robot variant dispatch it replaced inside the sweep.
void BM_BatchedPositions(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<Vec2> origins = jittered_ring(n);
  std::vector<rv::traj::TimedSegment> segs;
  segs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    rv::traj::GlobalSegmentStream stream(
        rv::search::make_square_spiral_baseline(), RobotAttributes{},
        origins[static_cast<std::size_t>(i)]);
    segs.push_back(stream.next());
  }
  rv::traj::BatchedPositions batch;
  batch.assemble(segs);
  std::vector<Vec2> out(static_cast<std::size_t>(n));
  double t = 0.0;
  for (auto _ : state) {
    t += 1e-4;
    if (t > 1.0) t = 0.0;
    batch.positions(t, out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BatchedPositions)->Arg(3)->Arg(50)->Arg(250)->Arg(1000);

// Metric kernels head to head on the jittered ring (the gather
// family's layout): brute-force O(n²) vs grid closest-pair / calipers
// diameter.
void run_metric_kernel_bench(benchmark::State& state, bool min_metric,
                             rv::engine::KernelChoice kernel) {
  const auto pts = jittered_ring(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_metric
                                 ? rv::engine::min_pairwise(pts, kernel)
                                 : rv::engine::max_pairwise(pts, kernel));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_MetricKernelMinBrute(benchmark::State& state) {
  run_metric_kernel_bench(state, true, rv::engine::KernelChoice::kBruteForce);
}
void BM_MetricKernelMinGrid(benchmark::State& state) {
  run_metric_kernel_bench(state, true, rv::engine::KernelChoice::kGeometric);
}
void BM_MetricKernelMaxBrute(benchmark::State& state) {
  run_metric_kernel_bench(state, false,
                          rv::engine::KernelChoice::kBruteForce);
}
void BM_MetricKernelMaxCalipers(benchmark::State& state) {
  run_metric_kernel_bench(state, false,
                          rv::engine::KernelChoice::kGeometric);
}
BENCHMARK(BM_MetricKernelMinBrute)->Arg(16)->Arg(48)->Arg(250)->Arg(1000);
BENCHMARK(BM_MetricKernelMinGrid)->Arg(16)->Arg(48)->Arg(250)->Arg(1000);
BENCHMARK(BM_MetricKernelMaxBrute)->Arg(16)->Arg(48)->Arg(250)->Arg(1000);
BENCHMARK(BM_MetricKernelMaxCalipers)->Arg(16)->Arg(48)->Arg(250)->Arg(1000);

void BM_LambertW0(benchmark::State& state) {
  double x = 0.5;
  for (auto _ : state) {
    x = x < 1e6 ? x * 1.7 : 0.5;
    benchmark::DoNotOptimize(rv::mathx::lambert_w0(x));
  }
}
BENCHMARK(BM_LambertW0);

void BM_DifferenceFactorisation(benchmark::State& state) {
  double phi = 0.1;
  for (auto _ : state) {
    phi += 0.37;
    if (phi > 6.0) phi = 0.1;
    benchmark::DoNotOptimize(
        rv::geom::factor_difference_matrix(1.7, phi, -1));
  }
}
BENCHMARK(BM_DifferenceFactorisation);

void BM_EngineScenarioSweep(benchmark::State& state) {
  // A 16-cell attribute grid through the batch engine; the argument is
  // the worker-thread count, so the timings expose the sweep's
  // parallel scaling (CSV output is identical at every thread count).
  const unsigned threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    rv::engine::ScenarioSet set;
    set.speeds({0.5, 1.0, 2.0, 4.0})
        .time_units({0.5, 0.75})
        .chiralities({1, -1})
        .visibility(0.25)
        .algorithm(rv::rendezvous::AlgorithmChoice::kAlgorithm7)
        .max_time(2e3);
    rv::engine::RunnerOptions opts;
    opts.threads = threads;
    benchmark::DoNotOptimize(rv::engine::run_scenarios(set, opts));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_EngineScenarioSweep)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_RoundBound(benchmark::State& state) {
  double tau = 0.5;
  for (auto _ : state) {
    tau += 0.013;
    if (tau >= 0.99) tau = 0.31;
    benchmark::DoNotOptimize(rv::rendezvous::rendezvous_round_bound(tau, 6));
  }
}
BENCHMARK(BM_RoundBound);

}  // namespace

int main(int argc, char** argv) {
  // Benchmarks of an unoptimized build measure the compiler, not the
  // library: shout about it on stderr and tag the JSON context so
  // BENCH_engine.json snapshots are self-describing (CI builds the
  // smoke with CMAKE_BUILD_TYPE=Release; see .github/workflows/ci.yml).
  // Note on the stock "library_build_type" context field: it reports
  // how the google-benchmark *library* was compiled (the system
  // package often says "debug"), not this binary.  rv_optimized_build
  // is the authoritative flag for whether the recorded timings
  // measure optimized library code — tools/bench_diff gates on it
  // (--require-optimized).
#if defined(__OPTIMIZE__)
  benchmark::AddCustomContext("rv_optimized_build", "true");
#else
  std::fprintf(stderr,
               "========================================================\n"
               "WARNING: bench_micro was compiled WITHOUT optimization.\n"
               "Timings below measure the debug build, not the library.\n"
               "Rebuild with -DCMAKE_BUILD_TYPE=Release before recording\n"
               "BENCH_engine.json.\n"
               "========================================================\n");
  benchmark::AddCustomContext("rv_optimized_build", "false");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
