// X2 — related-work replication: the 1-D linear rendezvous of the
// paper's predecessor [11] (Czyzowicz–Killick–Kranakis, OPODIS 2018),
// rebuilt on this library's substrate, and a line-vs-plane comparison.
//
// Shapes to confirm:
//  * on the line, search is Θ(d) (the trajectory *crosses* every
//    point) vs the plane's Θ(d²/r·log);
//  * linear rendezvous is feasible iff v ≠ 1 or τ ≠ 1 or the robots
//    disagree on +x — the 1-D specialisation of Theorem 4;
//  * for the same clock ratio, the 1-D schedule meets much faster than
//    the 2-D one (lower-dimensional search).
//
// Every sweep is a declarative `engine::ScenarioSet`: the line halves
// are linear-family cells (zigzag search / linear rendezvous), the
// plane halves are search cells with explicit targets and rendezvous
// cells, paired up through `ResultSet::filtered`.  This file only
// declares the cells and reports.

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"
#include "mathx/constants.hpp"
#include "io/table.hpp"
#include "linear/linear_rendezvous.hpp"
#include "linear/zigzag.hpp"
#include "search/times.hpp"

int main() {
  using namespace rv;
  bench::banner("X2", "linear (1-D) rendezvous - the [11] predecessor",
                "related work [11]; Theorem 4 specialised to the line");

  // --- search: line Θ(d) vs plane Θ(d²/r·log) -----------------------------
  const std::vector<double> depths{1.0, 2.0, 4.0, 8.0};

  engine::ScenarioSet s1;
  engine::LinearCell line_base;
  line_base.mode = engine::LinearMode::kZigZagSearch;
  line_base.visibility = 1e-3;
  s1.linear_base(line_base)
      .linear_distances(depths)
      .linear_horizon([](const engine::LinearCell& c) {
        return linear::zigzag_reach_bound(c.target) + 1.0;
      })
      .search_horizon([](const engine::SearchCell& c) {
        return search::time_first_rounds(
                   search::guaranteed_round(c.distance, c.visibility)) +
               1.0;
      });
  for (const double d : depths) {
    engine::SearchCell plane;
    plane.distance = d;
    plane.visibility = 0.125;
    plane.targets = {{0.0, d}};  // the pre-port target, straight up the y axis
    s1.add_search(plane);
  }

  const engine::ResultSet r1 = engine::run_scenarios(s1);
  const engine::ResultSet lines = r1.filtered(engine::Family::kLinear);
  const engine::ResultSet planes = r1.filtered(engine::Family::kSearch);

  io::Table t1({"d", "line t (r->0)", "16d", "plane t (r=0.125)",
                "plane/line"});
  std::vector<io::CsvRow> csv1;
  for (std::size_t i = 0; i < depths.size(); ++i) {
    const double d = depths[i];
    const sim::SimResult& line = lines[i].linear_outcome.sim;
    const engine::SearchOutcome& plane = planes[i].search_outcome;
    if (!line.met || !plane.complete) {
      std::cerr << "UNEXPECTED MISS d=" << d << '\n';
      return 1;
    }
    t1.add_row({io::format_fixed(d, 1), io::format_fixed(line.time, 1),
                io::format_fixed(16.0 * d, 1),
                io::format_fixed(plane.worst_time, 1),
                io::format_fixed(plane.worst_time / line.time, 1) + "x"});
    csv1.push_back({io::format_double(d), io::format_double(line.time),
                    io::format_double(plane.worst_time)});
  }
  t1.print(std::cout, "search: doubling zigzag (line) vs Algorithm 4 (plane):");
  bench::dump_csv("x2_line_vs_plane_search.csv", {"d", "line", "plane"}, csv1);

  // --- rendezvous across the 1-D attribute families ------------------------
  struct Cell {
    double v, tau;
    int dir;
  };
  const std::vector<Cell> cells{{1.0, 1.0, 1},  {2.0, 1.0, 1},
                                {1.0, 0.5, 1},  {1.0, 0.75, 1},
                                {1.0, 1.0, -1}, {0.5, 0.5, -1}};

  engine::ScenarioSet s2;
  s2.linear_horizon([](const engine::LinearCell& c) {
    return linear::linear_rendezvous_feasible(c.attrs) ? 1e6 : 2e4;
  });
  for (const Cell& c : cells) {
    engine::LinearCell cell;
    cell.mode = engine::LinearMode::kRendezvous;
    cell.attrs.speed = c.v;
    cell.attrs.time_unit = c.tau;
    cell.attrs.direction = c.dir;
    cell.target = 1.0;
    cell.visibility = 0.05;
    s2.add_linear(cell);
  }

  const engine::ResultSet truth = engine::run_scenarios(s2);
  io::Table t2({"v", "tau", "dir", "feasible", "meet t", "outcome"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const bool feasible = truth[i].linear_outcome.feasible;
    const sim::SimResult& res = truth[i].linear_outcome.sim;
    t2.add_row({io::format_fixed(c.v, 2), io::format_fixed(c.tau, 2),
                std::to_string(c.dir), feasible ? "yes" : "NO",
                res.met ? io::format_fixed(res.time, 1) : "-",
                res.met ? "met"
                        : (feasible ? "MISS (bug)" : "no meet (as predicted)")});
    if (feasible != res.met) {
      std::cerr << "feasibility mismatch\n";
      return 1;
    }
  }
  t2.print(std::cout, "\nlinear rendezvous (d = 1, r = 0.05):");

  // --- line vs plane on the clock families ---------------------------------
  const std::vector<double> taus{0.5, 0.6, 0.75};
  engine::ScenarioSet s3;
  for (const double tau : taus) {
    rendezvous::Scenario plane;
    plane.attrs.time_unit = tau;
    plane.offset = {1.0, 0.0};
    plane.visibility = 0.2;
    plane.max_time = 1e6;
    s3.add(plane);

    engine::LinearCell line;
    line.mode = engine::LinearMode::kRendezvous;
    line.attrs.time_unit = tau;
    line.target = 1.0;
    line.visibility = 0.2;
    line.max_time = 1e6;
    s3.add_linear(line);
  }

  const engine::ResultSet r3 = engine::run_scenarios(s3);
  const engine::ResultSet l3 = r3.filtered(engine::Family::kLinear);
  const engine::ResultSet p3 = r3.filtered(engine::Family::kRendezvous);

  io::Table t3({"tau", "line meet t", "plane meet t", "plane/line"});
  std::vector<io::CsvRow> csv3;
  for (std::size_t i = 0; i < taus.size(); ++i) {
    const double tau = taus[i];
    const sim::SimResult& line = l3[i].linear_outcome.sim;
    const sim::SimResult& plane = p3[i].outcome.sim;
    if (!line.met || !plane.met) {
      std::cerr << "UNEXPECTED MISS tau=" << tau << '\n';
      return 1;
    }
    t3.add_row({io::format_fixed(tau, 2), io::format_fixed(line.time, 1),
                io::format_fixed(plane.time, 1),
                io::format_fixed(plane.time / line.time, 1) + "x"});
    csv3.push_back({io::format_double(tau), io::format_double(line.time),
                    io::format_double(plane.time)});
  }
  t3.print(std::cout, "\nclock-only rendezvous, line vs plane (d=1, r=0.2):");
  bench::dump_csv("x2_line_vs_plane_rendezvous.csv",
                  {"tau", "line", "plane"}, csv3);

  std::cout << "\nshape check: linear search is Theta(d) and beats the "
               "plane's d^2/r sweep by a growing factor; the 1-D "
               "feasibility truth table matches [11] (and Theorem 4 "
               "specialised to the line); the 1-D schedule meets faster "
               "on every clock case.\n";
  return 0;
}
