// X2 — related-work replication: the 1-D linear rendezvous of the
// paper's predecessor [11] (Czyzowicz–Killick–Kranakis, OPODIS 2018),
// rebuilt on this library's substrate, and a line-vs-plane comparison.
//
// Shapes to confirm:
//  * on the line, search is Θ(d) (the trajectory *crosses* every
//    point) vs the plane's Θ(d²/r·log);
//  * linear rendezvous is feasible iff v ≠ 1 or τ ≠ 1 or the robots
//    disagree on +x — the 1-D specialisation of Theorem 4;
//  * for the same clock ratio, the 1-D schedule meets much faster than
//    the 2-D one (lower-dimensional search).

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "mathx/constants.hpp"
#include "io/table.hpp"
#include "linear/linear_rendezvous.hpp"
#include "linear/zigzag.hpp"
#include "rendezvous/algorithm7.hpp"
#include "search/algorithm4.hpp"
#include "search/times.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace rv;
  bench::banner("X2", "linear (1-D) rendezvous - the [11] predecessor",
                "related work [11]; Theorem 4 specialised to the line");

  // --- search: line Θ(d) vs plane Θ(d²/r·log) -----------------------------
  io::Table t1({"d", "line t (r->0)", "16d", "plane t (r=0.125)",
                "plane/line"});
  std::vector<io::CsvRow> csv1;
  for (const double d : {1.0, 2.0, 4.0, 8.0}) {
    sim::SimOptions line_opts;
    line_opts.visibility = 1e-3;
    line_opts.max_time = linear::zigzag_reach_bound(d) + 1.0;
    const auto line = sim::simulate_search(linear::make_zigzag_program(),
                                           {d, 0.0}, line_opts);
    sim::SimOptions plane_opts;
    plane_opts.visibility = 0.125;
    plane_opts.max_time =
        search::time_first_rounds(search::guaranteed_round(d, 0.125)) + 1.0;
    const auto plane = sim::simulate_search(search::make_search_program(),
                                            {0.0, d}, plane_opts);
    if (!line.met || !plane.met) {
      std::cerr << "UNEXPECTED MISS d=" << d << '\n';
      return 1;
    }
    t1.add_row({io::format_fixed(d, 1), io::format_fixed(line.time, 1),
                io::format_fixed(16.0 * d, 1), io::format_fixed(plane.time, 1),
                io::format_fixed(plane.time / line.time, 1) + "x"});
    csv1.push_back({io::format_double(d), io::format_double(line.time),
                    io::format_double(plane.time)});
  }
  t1.print(std::cout, "search: doubling zigzag (line) vs Algorithm 4 (plane):");
  bench::dump_csv("x2_line_vs_plane_search.csv", {"d", "line", "plane"}, csv1);

  // --- rendezvous across the 1-D attribute families ------------------------
  io::Table t2({"v", "tau", "dir", "feasible", "meet t", "outcome"});
  struct Cell {
    double v, tau;
    int dir;
  };
  const std::vector<Cell> cells{{1.0, 1.0, 1},  {2.0, 1.0, 1},
                                {1.0, 0.5, 1},  {1.0, 0.75, 1},
                                {1.0, 1.0, -1}, {0.5, 0.5, -1}};
  for (const Cell& c : cells) {
    linear::LinearAttributes attrs;
    attrs.speed = c.v;
    attrs.time_unit = c.tau;
    attrs.direction = c.dir;
    const bool feasible = linear::linear_rendezvous_feasible(attrs);
    sim::SimOptions opts;
    opts.visibility = 0.05;
    opts.max_time = feasible ? 1e6 : 2e4;
    const auto res = sim::simulate_rendezvous(
        [] { return linear::make_linear_rendezvous_program(); },
        linear::to_planar(attrs), {1.0, 0.0}, opts);
    t2.add_row({io::format_fixed(c.v, 2), io::format_fixed(c.tau, 2),
                std::to_string(c.dir), feasible ? "yes" : "NO",
                res.met ? io::format_fixed(res.time, 1) : "-",
                res.met ? "met"
                        : (feasible ? "MISS (bug)" : "no meet (as predicted)")});
    if (feasible != res.met) {
      std::cerr << "feasibility mismatch\n";
      return 1;
    }
  }
  t2.print(std::cout, "\nlinear rendezvous (d = 1, r = 0.05):");

  // --- line vs plane on the clock families ---------------------------------
  io::Table t3({"tau", "line meet t", "plane meet t", "plane/line"});
  std::vector<io::CsvRow> csv3;
  for (const double tau : {0.5, 0.6, 0.75}) {
    linear::LinearAttributes lattrs;
    lattrs.time_unit = tau;
    sim::SimOptions opts;
    opts.visibility = 0.2;
    opts.max_time = 1e6;
    const auto line = sim::simulate_rendezvous(
        [] { return linear::make_linear_rendezvous_program(); },
        linear::to_planar(lattrs), {1.0, 0.0}, opts);
    geom::RobotAttributes pattrs;
    pattrs.time_unit = tau;
    const auto plane = sim::simulate_rendezvous(
        [] { return rendezvous::make_rendezvous_program(); }, pattrs,
        {1.0, 0.0}, opts);
    if (!line.met || !plane.met) {
      std::cerr << "UNEXPECTED MISS tau=" << tau << '\n';
      return 1;
    }
    t3.add_row({io::format_fixed(tau, 2), io::format_fixed(line.time, 1),
                io::format_fixed(plane.time, 1),
                io::format_fixed(plane.time / line.time, 1) + "x"});
    csv3.push_back({io::format_double(tau), io::format_double(line.time),
                    io::format_double(plane.time)});
  }
  t3.print(std::cout, "\nclock-only rendezvous, line vs plane (d=1, r=0.2):");
  bench::dump_csv("x2_line_vs_plane_rendezvous.csv",
                  {"tau", "line", "plane"}, csv3);

  std::cout << "\nshape check: linear search is Theta(d) and beats the "
               "plane's d^2/r sweep by a growing factor; the 1-D "
               "feasibility truth table matches [11] (and Theorem 4 "
               "specialised to the line); the 1-D schedule meets faster "
               "on every clock case.\n";
  return 0;
}
