// rv_batch — the batch/sharded front-end of the scenario engine.
//
// The first step toward the ROADMAP's "millions of scenario requests"
// service: run a named scenario set whole, as one deterministic shard
// of an N-way partition, or forked across P local worker processes;
// persist every computed outcome to an on-disk ScenarioCache
// (engine/cache_store.hpp); and merge shard cache files back into the
// byte-identical single-process CSV/JSON.  The contract throughout is
// the engine's: results are placed by stable work-item index and cached
// outcomes replay bit-for-bit, so ANY partition of the grid — threads,
// processes, machines — reproduces the same output bytes (pinned in
// tests/test_golden_shard.cpp and diffed for real in CI).
//
//   rv_batch list  [--set-file FILE]
//   rv_batch run   (--set NAME | --set-file FILE) [--shard I/N]
//                  [--cache-dir DIR] [--procs P] [--threads T]
//                  [--format csv|json|table] [--out FILE]
//                  [--require-all-hits] [--retries R] [--shard-timeout SEC]
//                  [--backoff-ms MS] [--partial]
//   rv_batch merge (--set NAME | --set-file FILE) --cache-dir DIR
//                  [--format ...] [--out FILE] [--require-all-hits]
//                  [--write-merged]
//   rv_batch cache-stats --cache-dir DIR
//   rv_batch compact --cache-dir DIR [--max-age-days D] [--max-bytes N]
//
// `--set-file` runs a data-driven `*.rvset` declaration (see
// engine/set_decl.hpp and examples/sets/) instead of a compiled-in set;
// the twins under examples/sets/ reproduce the built-in sets
// byte-identically.  `compact` is the cache-dir lifecycle tool: it
// merges every cache file into one deduplicated `compact.rvcache`
// (first writer wins, wrong-epoch files dropped), optionally evicting
// by age (--max-age-days) and to a byte budget (--max-bytes, oldest
// first), then deletes the originals — a warm `--require-all-hits`
// rerun stays at 100% hits (see docs/OPERATIONS.md).
//
// Fork mode (--procs P) runs under a shard supervisor
// (engine/supervisor.hpp): each shard gets a per-attempt deadline
// (--shard-timeout), failed/killed/timed-out shards are retried —
// only they — up to --retries times with exponential backoff
// (--backoff-ms base), and a per-shard attempt/latency/exit-status
// table plus a JSON coverage report land on stderr when anything
// failed.  By default an exhausted shard makes the whole run fail
// loudly (exit 4, no document); --partial instead emits the surviving
// subset in global-index order and exits 0, leaving the coverage
// report (failed shards, missing global item indices) on stderr.
//
// The result document goes to stdout (or --out); diagnostics go to
// stderr.  Exit codes: 0 success, 1 usage error, 2 execution failure,
// 3 --require-all-hits violation, 4 shards failed after retries.

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "engine/cache_store.hpp"
#include "engine/failpoint.hpp"
#include "engine/runner.hpp"
#include "engine/set_decl.hpp"
#include "engine/shard.hpp"
#include "engine/supervisor.hpp"
#include "io/args.hpp"
#include "rv_batch_sets.hpp"

namespace {

namespace fs = std::filesystem;
using rv::engine::CacheLoadStats;
using rv::engine::ResultSet;
using rv::engine::ScenarioCache;
using rv::engine::ShardPlan;
using rv::engine::SupervisorOptions;
using rv::engine::SupervisorReport;
using rv::engine::WorkItem;

constexpr int kExitUsage = 1;
constexpr int kExitFailure = 2;
constexpr int kExitMissedHits = 3;
constexpr int kExitShardsFailed = 4;

/// Thrown when shards exhaust their attempt budget in default
/// (all-or-nothing) mode; mapped to kExitShardsFailed in main so
/// operators can distinguish "a shard died" from generic failures.
struct ShardFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct ShardSpec {
  std::size_t shard = 0;
  std::size_t num_shards = 1;
};

/// Parses "I/N" (e.g. "0/4").  Both parts must be plain non-empty
/// digit strings: `std::stoul` alone would wrap a negative index to a
/// huge shard number and skip leading whitespace (" 1/2", "-1/2"),
/// deferring to a confusing downstream shard_plan error — reject
/// non-digit input up front instead.  \throws std::invalid_argument on
/// malformed input; range checking is left to shard_plan.
ShardSpec parse_shard(const std::string& text) {
  const auto fail = [&text]() -> std::invalid_argument {
    return std::invalid_argument("--shard expects I/N (e.g. 0/4), got '" +
                                 text + "'");
  };
  const auto all_digits = [](std::string_view part) {
    if (part.empty()) return false;
    for (const char c : part) {
      if (c < '0' || c > '9') return false;
    }
    return true;
  };
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) throw fail();
  const std::string shard_part = text.substr(0, slash);
  const std::string total_part = text.substr(slash + 1);
  if (!all_digits(shard_part) || !all_digits(total_part)) throw fail();
  ShardSpec spec;
  try {
    spec.shard = std::stoul(shard_part);
    spec.num_shards = std::stoul(total_part);
  } catch (const std::out_of_range&) {
    throw fail();
  }
  return spec;
}

/// Renders the set in the requested format.
std::string render(const ResultSet& results, const std::string& format) {
  if (format == "csv") return results.to_csv();
  if (format == "json") return results.to_json();
  if (format == "table") {
    std::ostringstream os;
    results.to_table().print(os);
    return os.str();
  }
  throw std::invalid_argument("--format must be csv, json or table, got '" +
                              format + "'");
}

/// Writes the document to --out, or stdout when --out is empty.
void emit(const std::string& document, const std::string& out_path) {
  if (out_path.empty()) {
    std::cout << document;
    std::cout.flush();
    return;
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out << document;
  out.flush();  // surface deferred write errors before the state check
  if (!out) {
    throw std::runtime_error("cannot write --out file " + out_path);
  }
}

void print_load_stats(const char* verb, const CacheLoadStats& stats) {
  std::cerr << "rv_batch: " << verb << " " << stats.loaded
            << " cached outcomes from " << stats.files << " file(s)";
  if (stats.duplicates > 0) {
    std::cerr << " (" << stats.duplicates << " duplicate keys)";
  }
  if (stats.skipped > 0) {
    std::cerr << " (" << stats.skipped << " corrupt record region(s) skipped)";
  }
  if (stats.bad_files > 0) {
    std::cerr << " (" << stats.bad_files << " unreadable file(s))";
  }
  std::cerr << "\n";
}

void print_run_stats(const std::string& set_name, std::size_t items,
                     const rv::engine::CacheStats& stats) {
  std::cerr << "rv_batch: set=" << set_name << " items=" << items
            << " cache hits=" << stats.hits << " misses=" << stats.misses
            << " uncacheable=" << stats.uncacheable << "\n";
}

/// Enforces --require-all-hits: every item must have replayed from the
/// cache.  Returns the process exit code (0 when satisfied).
int check_all_hits(bool required, const rv::engine::CacheStats& stats) {
  if (!required) return 0;
  if (stats.misses == 0 && stats.uncacheable == 0) return 0;
  std::cerr << "rv_batch: --require-all-hits violated (" << stats.misses
            << " misses, " << stats.uncacheable << " uncacheable)\n";
  return kExitMissedHits;
}

/// The cache file a shard persists its outcomes to.  Set-qualified so
/// different sets can share one cache directory without clobbering
/// each other's files.
fs::path shard_cache_path(const fs::path& dir, const std::string& set_name,
                          const ShardSpec& spec) {
  return dir /
         rv::engine::shard_file_name(set_name, spec.shard, spec.num_shards);
}

/// Runs one shard (or, with num_shards == 1, the whole set): warm-loads
/// the cache directory if given (unless `preloaded` already holds it —
/// the fork mode loads once in the parent), executes the plan,
/// persists the cache back, and returns the executed slice.
ResultSet run_one_shard(const std::vector<WorkItem>& work,
                        const std::string& set_name, const ShardSpec& spec,
                        unsigned threads, const fs::path& cache_dir,
                        ScenarioCache* preloaded = nullptr) {
  ScenarioCache local;
  ScenarioCache* cache = preloaded != nullptr ? preloaded : &local;
  if (preloaded == nullptr && !cache_dir.empty()) {
    print_load_stats("loaded", rv::engine::load_cache_dir(cache_dir, cache));
  }
  const ShardPlan plan =
      rv::engine::shard_plan(work.size(), spec.shard, spec.num_shards);
  rv::engine::RunnerOptions options;
  options.threads = threads;
  options.cache = cache;
  ResultSet results = rv::engine::run_shard(work, plan, options);
  const fs::path shard_file =
      cache_dir.empty() ? fs::path{}
                        : shard_cache_path(cache_dir, set_name, spec);
  if (!cache_dir.empty() && results.cache_stats().misses == 0 &&
      fs::exists(shard_file)) {
    // Pure replay: nothing new was computed and the shard file already
    // exists, so rewriting it would produce the same bytes.
    std::cerr << "rv_batch: " << shard_file << " unchanged (all hits)\n";
  } else if (!cache_dir.empty()) {
    // Persist only the outcomes this shard *owns*: warm-loaded entries
    // stay in the files they came from, so a shared cache directory
    // grows linearly in the sweep size however many shards run
    // through it sequentially.
    ScenarioCache own;
    for (const std::size_t i : plan.indices) {
      const std::optional<std::string> key = rv::engine::cache_key(work[i]);
      ScenarioCache::Entry entry;
      if (key.has_value() && cache->lookup(*key, &entry)) {
        own.store(*key, std::move(entry));
      }
    }
    rv::engine::save_cache_file(shard_file, own);
    std::cerr << "rv_batch: wrote " << own.size() << " outcomes to "
              << shard_file << "\n";
  }
  return results;
}

/// Fork-mode knobs beyond the worker count.
struct ForkOptions {
  unsigned threads = 0;            ///< per-child thread budget (0 = split hw)
  SupervisorOptions supervisor;    ///< retries / deadline / backoff
  bool partial = false;            ///< emit surviving subset on failure
};

/// `run --procs P`: supervises P children (engine/supervisor.hpp), each
/// executing shard p/P with the shared cache directory, then replays
/// the merged cache into the full set in this process.  Failed shards
/// are retried per `options.supervisor`; with every shard eventually
/// succeeding the merge covers the full set (all hits).  When shards
/// exhaust their budget, the attempt table and a JSON coverage report
/// go to stderr, then either a ShardFailure escapes (default) or —
/// with `options.partial` — the surviving subset is replayed and
/// returned in global-index order.
ResultSet run_forked(const std::vector<WorkItem>& work,
                     const std::string& set_name, std::size_t procs,
                     const fs::path& cache_dir, const ForkOptions& options) {
  // Warm-load the directory once, before forking: the children inherit
  // the populated cache copy-on-write instead of each re-parsing every
  // file.
  ScenarioCache warm;
  print_load_stats("loaded", rv::engine::load_cache_dir(cache_dir, &warm));
  // Split the thread budget across the workers: P children each
  // defaulting to hardware concurrency would oversubscribe the box
  // P-fold.  An explicit --threads T is taken as the per-process
  // budget the operator asked for and left alone.
  unsigned child_threads = options.threads;
  if (child_threads == 0) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    child_threads = std::max(1u, hw / static_cast<unsigned>(procs));
  }
  const auto child_main = [&](std::size_t p) -> int {
    // Chaos site: crash/delay/error a worker at its very first
    // instruction — the supervisor must detect and retry it.
    RV_FAILPOINT_AT("shard.worker.start", p);
    (void)run_one_shard(work, set_name, {p, procs}, child_threads, cache_dir,
                        &warm);
    return 0;
  };
  const SupervisorReport report =
      rv::engine::supervise_shards(procs, child_main, options.supervisor);
  if (report.any_failures()) {
    std::cerr << "rv_batch: shard attempt log:\n" << report.table();
  }
  rv::engine::RunnerOptions run_options;
  run_options.threads = options.threads;
  if (!report.complete()) {
    std::cerr << report.to_json(work.size());
    const std::vector<std::size_t> failed = report.failed_shards();
    std::string failed_list;
    for (const std::size_t s : failed) {
      if (!failed_list.empty()) failed_list += ", ";
      failed_list += std::to_string(s);
    }
    if (!options.partial) {
      throw ShardFailure(std::to_string(failed.size()) + " of " +
                         std::to_string(procs) +
                         " shard(s) failed after retries: {" + failed_list +
                         "} (rerun with --partial for the surviving subset)");
    }
    // Graceful degradation: replay only the items owned by surviving
    // shards, in ascending global-index order, so the emitted subset is
    // byte-identical to the corresponding rows of the full document.
    std::vector<WorkItem> subset;
    subset.reserve(work.size());
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (std::find(failed.begin(), failed.end(), i % procs) == failed.end()) {
        subset.push_back(work[i]);
      }
    }
    std::cerr << "rv_batch: --partial: emitting " << subset.size() << " of "
              << work.size() << " items (shards {" << failed_list
              << "} missing)\n";
    ScenarioCache cache;
    print_load_stats("merged", rv::engine::load_cache_dir(cache_dir, &cache));
    run_options.cache = &cache;
    return rv::engine::run_scenarios(subset, run_options);
  }
  // Merge: replay every persisted outcome into the full set.  All
  // cacheable items hit, so this recomputes nothing and reproduces the
  // single-process bytes.
  ScenarioCache cache;
  print_load_stats("merged", rv::engine::load_cache_dir(cache_dir, &cache));
  run_options.cache = &cache;
  return rv::engine::run_scenarios(work, run_options);
}

/// The set a run/merge operates on: a compiled-in declaration named by
/// --set, or a data-driven `*.rvset` file named by --set-file.
struct NamedSet {
  std::string name;
  rv::engine::ScenarioSet set;
};

NamedSet resolve_set(const rv::io::Args& args) {
  const std::string set_name = args.get("set");
  const std::string set_file = args.get("set-file");
  if (!set_file.empty()) {
    if (!set_name.empty()) {
      throw std::invalid_argument("--set and --set-file are exclusive");
    }
    rv::engine::SetDecl decl = rv::engine::parse_set_decl_file(set_file);
    return NamedSet{std::move(decl.name), std::move(decl.set)};
  }
  if (set_name.empty()) {
    throw std::invalid_argument(
        "need --set NAME (see: rv_batch list) or --set-file FILE");
  }
  return NamedSet{set_name, rv::batch::build_builtin_set(set_name)};
}

int cmd_list(const rv::io::Args& args) {
  const std::string set_file = args.get("set-file");
  if (!set_file.empty()) {
    const rv::engine::SetDecl decl = rv::engine::parse_set_decl_file(set_file);
    const std::size_t items = decl.set.materialize_work().size();
    std::cout << decl.name << "  (" << items << " items)  "
              << decl.description << "\n";
    return 0;
  }
  for (const rv::batch::BuiltinSet& set : rv::batch::builtin_sets()) {
    const std::size_t items = set.build().materialize_work().size();
    std::cout << set.name << "  (" << items << " items)  " << set.description
              << "\n";
  }
  return 0;
}

int cmd_run(rv::io::Args& args) {
  const NamedSet named = resolve_set(args);
  const std::string& set_name = named.name;
  const std::vector<WorkItem> work = named.set.materialize_work();
  const unsigned threads = static_cast<unsigned>(args.get_int("threads"));
  const fs::path cache_dir = args.get("cache-dir");
  const std::string shard_text = args.get("shard");
  const int procs = args.get_int("procs");
  if (procs < 1) {
    throw std::invalid_argument("--procs must be >= 1, got " +
                                std::to_string(procs));
  }
  const int retries = args.get_int("retries");
  const double shard_timeout = args.get_double("shard-timeout");
  const int backoff_ms = args.get_int("backoff-ms");
  const bool partial = args.get_bool("partial");
  if (retries < 0) {
    throw std::invalid_argument("--retries must be >= 0, got " +
                                std::to_string(retries));
  }
  if (shard_timeout < 0.0) {
    throw std::invalid_argument("--shard-timeout must be >= 0 seconds");
  }
  if (backoff_ms < 0) {
    throw std::invalid_argument("--backoff-ms must be >= 0, got " +
                                std::to_string(backoff_ms));
  }
  if (procs == 1 && (retries > 0 || shard_timeout > 0.0 || partial)) {
    throw std::invalid_argument(
        "--retries/--shard-timeout/--partial apply to fork mode only "
        "(need --procs > 1)");
  }

  ResultSet results;
  rv::engine::CacheStats stats;
  if (procs > 1) {
    if (!shard_text.empty()) {
      throw std::invalid_argument("--procs and --shard are exclusive");
    }
    if (cache_dir.empty()) {
      throw std::invalid_argument(
          "--procs needs --cache-dir (the shard hand-off point)");
    }
    fs::create_directories(cache_dir);
    ForkOptions fork_options;
    fork_options.threads = threads;
    fork_options.supervisor.retries = static_cast<std::size_t>(retries);
    fork_options.supervisor.timeout_sec = shard_timeout;
    fork_options.supervisor.backoff_ms =
        static_cast<std::uint64_t>(backoff_ms);
    fork_options.partial = partial;
    results = run_forked(work, set_name, static_cast<std::size_t>(procs),
                         cache_dir, fork_options);
    stats = results.cache_stats();
  } else {
    const ShardSpec spec =
        shard_text.empty() ? ShardSpec{} : parse_shard(shard_text);
    if (!cache_dir.empty()) fs::create_directories(cache_dir);
    results = run_one_shard(work, set_name, spec, threads, cache_dir);
    stats = results.cache_stats();
  }
  print_run_stats(set_name, results.size(), stats);
  emit(render(results, args.get("format")), args.get("out"));
  return check_all_hits(args.get_bool("require-all-hits"), stats);
}

int cmd_merge(rv::io::Args& args) {
  const NamedSet named = resolve_set(args);
  const std::string& set_name = named.name;
  const fs::path cache_dir = args.get("cache-dir");
  if (cache_dir.empty()) {
    throw std::invalid_argument("merge needs --cache-dir");
  }
  ScenarioCache cache;
  print_load_stats("merged", rv::engine::load_cache_dir(cache_dir, &cache));
  rv::engine::RunnerOptions options;
  options.threads = static_cast<unsigned>(args.get_int("threads"));
  options.cache = &cache;
  const ResultSet results = rv::engine::run_scenarios(named.set, options);
  print_run_stats(set_name, results.size(), results.cache_stats());
  if (args.get_bool("write-merged")) {
    const fs::path merged =
        cache_dir /
        (set_name + "-merged" + rv::engine::kCacheFileExtension);
    rv::engine::save_cache_file(merged, cache);
    std::cerr << "rv_batch: wrote " << cache.size() << " outcomes to "
              << merged << "\n";
  }
  emit(render(results, args.get("format")), args.get("out"));
  return check_all_hits(args.get_bool("require-all-hits"),
                        results.cache_stats());
}

int cmd_cache_stats(rv::io::Args& args) {
  const fs::path cache_dir = args.get("cache-dir");
  if (cache_dir.empty()) {
    throw std::invalid_argument("cache-stats needs --cache-dir");
  }
  const std::vector<fs::path> files =
      rv::engine::list_cache_files(cache_dir);
  // Loading sequentially into one cache makes `new` vs `duplicate`
  // meaningful across files: later files only contribute keys the
  // earlier ones did not.
  std::error_code ec;
  ScenarioCache cache;
  for (const fs::path& file : files) {
    const CacheLoadStats stats = rv::engine::load_cache_file(file, &cache);
    std::cout << file.filename().string() << ": new=" << stats.loaded
              << " duplicate=" << stats.duplicates
              << " corrupt-regions=" << stats.skipped
              << " bytes=" << fs::file_size(file, ec) << "\n";
  }
  std::cout << "total: files=" << files.size()
            << " distinct-keys=" << cache.size() << "\n";
  return 0;
}

/// Parses --max-bytes: a plain non-empty digit string (no sign, no
/// suffixes), so a typo cannot silently become "no budget".
std::uintmax_t parse_max_bytes(const std::string& text) {
  if (text.empty()) return 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("--max-bytes expects a byte count, got '" +
                                  text + "'");
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) {
    throw std::invalid_argument("--max-bytes out of range: '" + text + "'");
  }
  return value;
}

int cmd_compact(rv::io::Args& args) {
  const fs::path cache_dir = args.get("cache-dir");
  if (cache_dir.empty()) {
    throw std::invalid_argument("compact needs --cache-dir");
  }
  rv::engine::CompactOptions options;
  options.max_age_days = args.get_double("max-age-days");
  if (options.max_age_days < 0.0) {
    throw std::invalid_argument("--max-age-days must be >= 0");
  }
  options.max_bytes = parse_max_bytes(args.get("max-bytes"));
  const rv::engine::CompactResult result =
      rv::engine::compact_cache_dir(cache_dir, options);
  // Same per-file counter shape as cache-stats, plus the disposition.
  std::size_t evicted = 0, dropped = 0, merged = 0;
  for (const rv::engine::CompactResult::FileReport& report : result.files) {
    const std::string name = report.path.filename().string();
    switch (report.disposition) {
      case rv::engine::CompactResult::Disposition::kMerged:
        std::cout << "merged " << name << ": new=" << report.stats.loaded
                  << " duplicate=" << report.stats.duplicates
                  << " corrupt-regions=" << report.stats.skipped << "\n";
        ++merged;
        break;
      case rv::engine::CompactResult::Disposition::kDroppedBad:
        std::cout << "dropped " << name
                  << ": bad header or wrong engine epoch\n";
        ++dropped;
        break;
      case rv::engine::CompactResult::Disposition::kEvictedAge:
        std::cout << "evicted " << name << ": older than --max-age-days\n";
        ++evicted;
        break;
      case rv::engine::CompactResult::Disposition::kEvictedBudget:
        std::cout << "evicted " << name << ": over --max-bytes budget\n";
        ++evicted;
        break;
    }
  }
  std::cout << "total: merged=" << merged << " evicted=" << evicted
            << " dropped=" << dropped
            << " distinct-keys=" << result.entries << "\n";
  std::cout << result.output.filename().string()
            << ": entries=" << result.entries
            << " bytes=" << result.output_bytes << "\n";
  return 0;
}

/// The flag contract: which of the (globally declared) flags each
/// subcommand actually consumes.  Everything else is rejected up
/// front with exit 1 — historically `cache-stats`/`compact` silently
/// ignored `--set`/`--set-file` and `merge` silently ignored the
/// fork-only supervisor knobs, so a typo'd invocation looked like it
/// worked while doing something else entirely.
const std::map<std::string, std::vector<std::string>>& flag_contract() {
  static const std::map<std::string, std::vector<std::string>> contract = {
      {"list", {"set-file"}},
      {"run",
       {"set", "set-file", "shard", "procs", "threads", "cache-dir", "format",
        "out", "require-all-hits", "retries", "shard-timeout", "backoff-ms",
        "partial"}},
      {"merge",
       {"set", "set-file", "threads", "cache-dir", "format", "out",
        "require-all-hits", "write-merged"}},
      {"cache-stats", {"cache-dir"}},
      {"compact", {"cache-dir", "max-age-days", "max-bytes"}},
  };
  return contract;
}

/// Rejects every explicitly-provided flag the subcommand does not
/// consume.  \throws std::invalid_argument naming the flag and the
/// subcommand (exit 1, same as any other usage error).
void enforce_flag_contract(const std::string& command,
                           const rv::io::Args& args,
                           const std::vector<std::string>& declared) {
  const auto it = flag_contract().find(command);
  if (it == flag_contract().end()) return;
  const std::vector<std::string>& allowed = it->second;
  for (const std::string& flag : declared) {
    if (!args.provided(flag)) continue;
    if (std::find(allowed.begin(), allowed.end(), flag) != allowed.end()) {
      continue;
    }
    std::string accepted;
    for (const std::string& name : allowed) {
      if (!accepted.empty()) accepted += ", ";
      accepted += "--" + name;
    }
    throw std::invalid_argument("--" + flag + " does not apply to '" +
                                command + "' (it accepts: " +
                                (accepted.empty() ? "no flags" : accepted) +
                                ")");
  }
}

void usage(std::ostream& os) {
  os << "usage: rv_batch <list|run|merge|cache-stats|compact> [flags]\n"
     << "  list  [--set-file FILE]   show the built-in sets (or one .rvset)\n"
     << "  run   (--set NAME | --set-file FILE)\n"
     << "        run a built-in set or a declarative .rvset file\n"
     << "        [--shard I/N] [--procs P] [--cache-dir DIR] [--threads T]\n"
     << "        [--format csv|json|table] [--out FILE] [--require-all-hits]\n"
     << "        [--retries R] [--shard-timeout SEC] [--backoff-ms MS]\n"
     << "        [--partial]       (supervisor knobs; fork mode only)\n"
     << "  merge (--set NAME | --set-file FILE) --cache-dir DIR\n"
     << "        replay shard caches into the single-process document\n"
     << "        [--write-merged] [...run flags]\n"
     << "  cache-stats --cache-dir DIR        describe the cache files\n"
     << "  compact --cache-dir DIR            merge + dedupe the cache files\n"
     << "        [--max-age-days D]           evict files older than D days\n"
     << "        [--max-bytes N]              evict oldest-first to fit N\n"
     << "exit codes: 0 ok, 1 usage, 2 failure, 3 --require-all-hits missed,\n"
     << "            4 shards failed after retries (see docs/OPERATIONS.md)\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(std::cerr);
    return kExitUsage;
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "help") {
    usage(std::cout);
    return 0;
  }
  rv::io::Args args;
  args.declare("set", "", "built-in scenario set name (see: rv_batch list)");
  args.declare("set-file", "",
               "declarative .rvset file to run instead of a built-in set");
  args.declare("shard", "", "run only shard I of N, as I/N");
  args.declare_int("procs", 1, "fork P local shard processes, then merge");
  args.declare_int("threads", 0, "worker threads per process (0 = hardware)");
  args.declare("cache-dir", "", "directory of persistent *.rvcache files");
  args.declare("format", "csv", "output format: csv, json or table");
  args.declare("out", "", "write the document here instead of stdout");
  args.declare_bool("require-all-hits",
                    "fail (exit 3) unless every item replayed from cache");
  args.declare_bool("write-merged",
                    "merge: also write the union as merged.rvcache");
  args.declare_int("retries", 0,
                   "fork mode: extra attempts per failed shard (0 = fail fast)");
  args.declare_double("shard-timeout", 0.0,
                      "fork mode: per-attempt deadline in seconds (0 = none)");
  args.declare_int("backoff-ms", 100,
                   "fork mode: base retry backoff in milliseconds");
  args.declare_bool("partial",
                    "fork mode: emit surviving subset (exit 0) when shards "
                    "exhaust retries, instead of failing with exit 4");
  args.declare_double("max-age-days", 0.0,
                      "compact: evict cache files older than this (0 = keep)");
  args.declare("max-bytes", "",
               "compact: byte budget, evicting oldest files first (empty = "
               "no budget)");
  const std::vector<std::string> declared = {
      "set",          "set-file",  "shard",        "procs",
      "threads",      "cache-dir", "format",       "out",
      "require-all-hits",          "write-merged", "retries",
      "shard-timeout",             "backoff-ms",   "partial",
      "max-age-days",              "max-bytes"};
  try {
    args.parse(argc - 1, argv + 1);
    if (args.help_requested()) {
      usage(std::cout);
      return 0;
    }
    enforce_flag_contract(command, args, declared);
    if (command == "list") return cmd_list(args);
    if (command == "run") return cmd_run(args);
    if (command == "merge") return cmd_merge(args);
    if (command == "cache-stats") return cmd_cache_stats(args);
    if (command == "compact") return cmd_compact(args);
    std::cerr << "rv_batch: unknown command '" << command << "'\n";
    usage(std::cerr);
    return kExitUsage;
  } catch (const ShardFailure& e) {
    std::cerr << "rv_batch: " << e.what() << "\n";
    return kExitShardsFailed;
  } catch (const rv::engine::SetDeclError& e) {
    // A malformed --set-file is a usage problem: the message already
    // names the file, line and key.
    std::cerr << "rv_batch: " << e.what() << "\n";
    return kExitUsage;
  } catch (const std::invalid_argument& e) {
    std::cerr << "rv_batch: " << e.what() << "\n";
    return kExitUsage;
  } catch (const std::exception& e) {
    std::cerr << "rv_batch: " << e.what() << "\n";
    return kExitFailure;
  }
}
