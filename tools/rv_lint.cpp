// rv_lint — the project's determinism / invariant linter.
//
// The engine's contract is *certified* output: byte-identical emission
// at any thread count, bit-exact cache round-trips, sharded runs that
// reproduce single-process bytes.  The compiler cannot check most of
// what that contract depends on, so this tool enforces the
// project-specific rules statically, the same way bench_diff gates the
// perf trajectory: dependency-free, walking `src/ tools/ tests/`, and
// wired into CTest + CI so a violation fails the build.
//
// Rules (slug — what it rejects):
//   unordered-iteration  iterating a std::unordered_{map,set} in the
//                        determinism-critical paths (src/engine, src/io,
//                        src/geom, tools): iteration order is
//                        implementation-defined and must never feed
//                        emission, cache_key, or wire bytes.  Sort
//                        first (see ScenarioCache::snapshot) and
//                        document the reduction with an allow comment.
//   nondeterminism       std::rand / srand / random_device / time( /
//                        system_clock / steady_clock outside mathx/rng:
//                        all randomness must flow through the seeded
//                        deterministic engine rng.
//   float-type           the `float` type inside src/engine and
//                        src/geom: the certified sweep and kernels are
//                        double-only; a narrowing anywhere in those
//                        paths silently changes certified bytes.
//   stdout-write         std::cout / printf / puts / putchar / fwrite /
//                        fputs / `stdout` / STDOUT_FILENO in library
//                        code under src/: emitters format through
//                        io::/ResultSet into caller-owned streams;
//                        stray stdout corrupts machine-read documents
//                        (rv_batch writes its result document there,
//                        and rv_serve's framed reply writer is the
//                        only sanctioned protocol-output path).
//   catch-swallow        `catch (...)` whose body neither rethrows nor
//                        captures via std::current_exception: a
//                        swallowed exception turns a wrong answer into
//                        a silent one.
//   pragma-once          every header must open with #pragma once
//                        before any other code or directive.
//   failpoint-site       RV_FAILPOINT* macro invocations in src/ and
//                        tools/ whose literal site name is malformed
//                        (must match [a-z0-9_.]+, the RV_FAILPOINTS
//                        spec grammar) or duplicates another site: a
//                        spec must target exactly one place.
//   wire-epoch           the serialized-schema guard: a normalized
//                        hash of engine/wire.hpp + the outcome-struct
//                        definitions + the cache_store payload
//                        encoders is pinned, together with
//                        kEngineCacheEpoch, in
//                        tools/sanitizers/wire_schema.lock.  Changing
//                        the schema without bumping the epoch (or
//                        bumping without re-blessing the lock) fails.
//
// Escape hatch: a `// rv-lint: allow(<rule>)` comment on the finding's
// line or the line directly above suppresses that rule there.  Use it
// to bless the (rare) sites that are deterministic despite the
// pattern, and say why next to it.
//
//   rv_lint [--root <dir>] [--verbose]    lint the tree, exit 1 on findings
//   rv_lint --root <dir> --update-wire-lock   re-bless the wire schema
//   rv_lint --self-test                   inject one violation per rule
//                                         into a scratch tree and verify
//                                         every rule (and the allow
//                                         escape, and both wire-epoch
//                                         failure modes) fires
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Small utilities
// ---------------------------------------------------------------------------

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool write_file(const fs::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  return static_cast<bool>(out);
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// FNV-1a 64-bit (same mix as the cache-store checksum; no dependency).
std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// ---------------------------------------------------------------------------
// Source model: raw text, a comment/string-stripped "code view" with
// identical offsets/line structure, and the per-line allow() sets.
// ---------------------------------------------------------------------------

struct SourceFile {
  fs::path path;        ///< as walked (absolute or root-relative)
  std::string rel;      ///< path relative to the lint root, '/'-separated
  std::string raw;      ///< file bytes
  std::string code;     ///< raw with comments + literal contents blanked
  std::vector<std::set<std::string>> allows;  ///< per line (1-based index 0 unused)
};

/// Blanks comments, string/char literal contents, and raw strings with
/// spaces (newlines kept), so rule matching cannot fire inside text
/// that the compiler never executes.
std::string strip_code(const std::string& in) {
  std::string out = in;
  std::size_t i = 0;
  const std::size_t n = in.size();
  auto blank = [&](std::size_t from, std::size_t to) {
    for (std::size_t k = from; k < to && k < n; ++k) {
      if (out[k] != '\n') out[k] = ' ';
    }
  };
  while (i < n) {
    const char c = in[i];
    if (c == '/' && i + 1 < n && in[i + 1] == '/') {
      std::size_t end = in.find('\n', i);
      if (end == std::string::npos) end = n;
      blank(i, end);
      i = end;
    } else if (c == '/' && i + 1 < n && in[i + 1] == '*') {
      std::size_t end = in.find("*/", i + 2);
      end = end == std::string::npos ? n : end + 2;
      blank(i, end);
      i = end;
    } else if (c == 'R' && i + 1 < n && in[i + 1] == '"' &&
               (i == 0 || !ident_char(in[i - 1]))) {
      // Raw string: R"delim( ... )delim"
      const std::size_t open = in.find('(', i + 2);
      if (open == std::string::npos) break;
      const std::string delim = in.substr(i + 2, open - i - 2);
      const std::string closer = ")" + delim + "\"";
      std::size_t end = in.find(closer, open + 1);
      end = end == std::string::npos ? n : end + closer.size();
      blank(i + 2, end);
      i = end;
    } else if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      while (j < n && in[j] != c) {
        j += in[j] == '\\' ? 2 : 1;
      }
      const std::size_t end = j < n ? j + 1 : n;
      blank(i + 1, end - 1);
      i = end;
    } else {
      ++i;
    }
  }
  return out;
}

SourceFile load_source(const fs::path& path, const std::string& rel,
                       std::string raw) {
  SourceFile f;
  f.path = path;
  f.rel = rel;
  f.raw = std::move(raw);
  f.code = strip_code(f.raw);
  // Per-line allow sets come from the *raw* text (the escapes live in
  // comments, which the code view blanks).
  f.allows.emplace_back();  // line 0 placeholder
  std::size_t pos = 0;
  while (pos <= f.raw.size()) {
    std::size_t end = f.raw.find('\n', pos);
    if (end == std::string::npos) end = f.raw.size();
    const std::string_view line(f.raw.data() + pos, end - pos);
    std::set<std::string> allowed;
    std::size_t at = 0;
    while ((at = line.find("rv-lint: allow(", at)) != std::string_view::npos) {
      const std::size_t open = at + std::string_view("rv-lint: allow(").size();
      const std::size_t close = line.find(')', open);
      if (close == std::string_view::npos) break;
      allowed.insert(std::string(line.substr(open, close - open)));
      at = close;
    }
    f.allows.push_back(std::move(allowed));
    if (end == f.raw.size()) break;
    pos = end + 1;
  }
  return f;
}

std::size_t line_of(const std::string& text, std::size_t offset) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + static_cast<long>(
                                              std::min(offset, text.size())),
                            '\n'));
}

struct Finding {
  std::string rule;
  std::string rel;
  std::size_t line = 0;
  std::string message;
};

class Linter {
 public:
  explicit Linter(bool verbose) : verbose_(verbose) {}

  void report(const SourceFile& f, std::size_t offset, const char* rule,
              std::string message) {
    const std::size_t line = line_of(f.raw, offset);
    if (allowed(f, line, rule)) {
      if (verbose_) {
        std::fprintf(stderr, "rv_lint: %s:%zu: %s allowed by escape\n",
                     f.rel.c_str(), line, rule);
      }
      return;
    }
    findings.push_back({rule, f.rel, line, std::move(message)});
  }

  static bool allowed(const SourceFile& f, std::size_t line,
                      const char* rule) {
    const auto has = [&](std::size_t l) {
      return l < f.allows.size() && f.allows[l].count(rule) != 0;
    };
    return has(line) || (line > 0 && has(line - 1));
  }

  std::vector<Finding> findings;

 private:
  bool verbose_;
};

// ---------------------------------------------------------------------------
// Token search helpers on the code view
// ---------------------------------------------------------------------------

/// Offsets of `token` in `code` as a standalone identifier (not inside
/// a longer identifier on either side).
std::vector<std::size_t> find_ident(const std::string& code,
                                    std::string_view token) {
  std::vector<std::size_t> hits;
  std::size_t at = 0;
  while ((at = code.find(token, at)) != std::string::npos) {
    const bool left_ok = at == 0 || !ident_char(code[at - 1]);
    const std::size_t end = at + token.size();
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    if (left_ok && right_ok) hits.push_back(at);
    at = end;
  }
  return hits;
}

/// Offset of the character matching the opener at `open` ('(' / '{' /
/// '<'), or npos.  Works on the code view, so literals cannot
/// unbalance it.
std::size_t match_at(const std::string& code, std::size_t open, char oc,
                     char cc) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == oc) ++depth;
    if (code[i] == cc && --depth == 0) return i;
  }
  return std::string::npos;
}

bool path_under(const std::string& rel, std::string_view prefix) {
  return rel.rfind(prefix, 0) == 0;
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

void rule_pragma_once(Linter& lint, const SourceFile& f) {
  if (f.path.extension() != ".hpp") return;
  // First non-blank character of the code view (comments are blanked)
  // must start `#pragma once`.
  std::size_t i = 0;
  while (i < f.code.size() &&
         std::isspace(static_cast<unsigned char>(f.code[i]))) {
    ++i;
  }
  if (f.code.compare(i, 12, "#pragma once") != 0) {
    lint.report(f, i, "pragma-once",
                "header must open with #pragma once (before any other "
                "directive or code)");
  }
}

void rule_nondeterminism(Linter& lint, const SourceFile& f) {
  // mathx/rng is the one sanctioned randomness source.
  if (f.rel.find("mathx/rng") != std::string::npos) return;
  const char* tokens[] = {"srand",        "random_device", "system_clock",
                          "steady_clock", "rand",          "time"};
  for (const char* token : tokens) {
    for (const std::size_t at : find_ident(f.code, token)) {
      // rand/time only count as the libc calls when invoked: `rand(`,
      // `time(` — otherwise common member names would fire.
      if ((std::string_view(token) == "rand" ||
           std::string_view(token) == "time")) {
        std::size_t j = at + std::string_view(token).size();
        while (j < f.code.size() && f.code[j] == ' ') ++j;
        if (j >= f.code.size() || f.code[j] != '(') continue;
        // Member access (`x.time(...)`) is not the libc call either.
        if (at >= 1 && (f.code[at - 1] == '.' )) continue;
      }
      lint.report(f, at, "nondeterminism",
                  std::string("'") + token +
                      "' outside mathx/rng — all randomness/clocks must "
                      "flow through the seeded deterministic rng");
    }
  }
}

void rule_float_type(Linter& lint, const SourceFile& f) {
  if (!path_under(f.rel, "src/engine/") && !path_under(f.rel, "src/geom/")) {
    return;
  }
  for (const std::size_t at : find_ident(f.code, "float")) {
    lint.report(f, at, "float-type",
                "'float' in certified numeric code — the sweep and "
                "kernels are double-only (a narrowing here changes "
                "certified bytes)");
  }
}

void rule_stdout_write(Linter& lint, const SourceFile& f) {
  if (!path_under(f.rel, "src/")) return;
  const char* tokens[] = {"printf", "puts", "putchar", "fwrite", "fputs"};
  for (const std::size_t at : find_ident(f.code, "cout")) {
    lint.report(f, at, "stdout-write",
                "stdout write in library code — emit through io:: / "
                "ResultSet into a caller-owned stream");
  }
  // The raw-fd/FILE* escapes matter since the serve layer landed: its
  // framed reply writer is the ONLY sanctioned process-output path in
  // src/ (serve_stream takes a caller-owned ostream), so a stray
  // `stdout`/`STDOUT_FILENO` would bypass both the framing and the
  // serve.reply failpoint.
  for (const char* ident : {"stdout", "STDOUT_FILENO"}) {
    for (const std::size_t at : find_ident(f.code, ident)) {
      lint.report(f, at, "stdout-write",
                  std::string("'") + ident +
                      "' in library code — reply through the framed "
                      "writer / a caller-owned stream");
    }
  }
  for (const char* token : tokens) {
    for (const std::size_t at : find_ident(f.code, token)) {
      std::size_t j = at + std::string_view(token).size();
      while (j < f.code.size() && f.code[j] == ' ') ++j;
      if (j >= f.code.size() || f.code[j] != '(') continue;
      lint.report(f, at, "stdout-write",
                  std::string("'") + token +
                      "' in library code — emit through io:: / ResultSet "
                      "into a caller-owned stream");
    }
  }
}

void rule_catch_swallow(Linter& lint, const SourceFile& f) {
  for (const std::size_t at : find_ident(f.code, "catch")) {
    const std::size_t open = f.code.find('(', at);
    if (open == std::string::npos) continue;
    const std::size_t close = match_at(f.code, open, '(', ')');
    if (close == std::string::npos) continue;
    std::string clause = f.code.substr(open + 1, close - open - 1);
    clause.erase(std::remove_if(clause.begin(), clause.end(),
                                [](char c) {
                                  return std::isspace(
                                      static_cast<unsigned char>(c));
                                }),
                 clause.end());
    if (clause != "...") continue;
    const std::size_t body_open = f.code.find('{', close);
    if (body_open == std::string::npos) continue;
    const std::size_t body_close = match_at(f.code, body_open, '{', '}');
    if (body_close == std::string::npos) continue;
    const std::string body =
        f.code.substr(body_open, body_close - body_open + 1);
    if (body.find("throw") != std::string::npos ||
        body.find("current_exception") != std::string::npos ||
        body.find("rethrow") != std::string::npos) {
      continue;
    }
    lint.report(f, at, "catch-swallow",
                "catch (...) that neither rethrows nor captures "
                "std::current_exception — a swallowed exception turns a "
                "wrong answer into a silent one");
  }
}

/// Names declared with a std::unordered_{map,set} type in `code`
/// (variables, members, parameters).
void collect_unordered_names(const std::string& code,
                             std::set<std::string>* names) {
  for (const char* container : {"unordered_map", "unordered_set"}) {
    for (const std::size_t at : find_ident(code, container)) {
      // A declaration's template argument list opens right after the
      // container name ( `#include <unordered_map>` does not).
      std::size_t angle = at + std::string_view(container).size();
      while (angle < code.size() && code[angle] == ' ') ++angle;
      if (angle >= code.size() || code[angle] != '<') continue;
      const std::size_t angle_close = match_at(code, angle, '<', '>');
      if (angle_close == std::string::npos) continue;
      std::size_t j = angle_close + 1;
      while (j < code.size() &&
             (std::isspace(static_cast<unsigned char>(code[j])) ||
              code[j] == '&' || code[j] == '*')) {
        ++j;
      }
      std::size_t end = j;
      while (end < code.size() && ident_char(code[end])) ++end;
      if (end > j) names->insert(code.substr(j, end - j));
    }
  }
}

void rule_unordered_iteration(Linter& lint, const SourceFile& f) {
  if (!path_under(f.rel, "src/engine/") && !path_under(f.rel, "src/io/") &&
      !path_under(f.rel, "src/geom/") && !path_under(f.rel, "tools/")) {
    return;
  }
  // Collect names declared with an unordered container type — in this
  // file AND in its sibling header (members like ScenarioCache::map_
  // are declared in the .hpp and iterated in the .cpp) — then flag
  // range-for iteration / explicit .begin() walks over them.
  std::set<std::string> names;
  collect_unordered_names(f.code, &names);
  if (f.path.extension() == ".cpp") {
    fs::path header = f.path;
    header.replace_extension(".hpp");
    if (const auto raw = read_file(header)) {
      collect_unordered_names(strip_code(*raw), &names);
    }
  }
  for (const std::string& name : names) {
    for (const std::size_t at : find_ident(f.code, name)) {
      // Range-for: `: name)` — scan left past whitespace for ':' that
      // is not part of '::'.
      std::size_t j = at;
      while (j > 0 &&
             std::isspace(static_cast<unsigned char>(f.code[j - 1]))) {
        --j;
      }
      const bool range_for =
          j > 0 && f.code[j - 1] == ':' && (j < 2 || f.code[j - 2] != ':');
      const std::size_t after = at + name.size();
      const bool begin_walk = f.code.compare(after, 7, ".begin(") == 0;
      if (!range_for && !begin_walk) continue;
      lint.report(
          f, at, "unordered-iteration",
          "iterating '" + name +
              "' (unordered container) in a determinism-critical path — "
              "iteration order is implementation-defined; sort first "
              "(cf. ScenarioCache::snapshot) or document an "
              "order-independent reduction with an allow escape");
    }
  }
}

// ---------------------------------------------------------------------------
// Failpoint sites (cross-file uniqueness)
// ---------------------------------------------------------------------------

/// name -> (rel, line) of its first occurrence, accumulated across the
/// whole tree walk (duplicates are reported at later occurrences).
using FailpointSites = std::map<std::string, std::pair<std::string,
                                                       std::size_t>>;

bool valid_failpoint_site_name(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

void rule_failpoint_site(Linter& lint, const SourceFile& f,
                         FailpointSites* sites) {
  // Production sites live in src/ and tools/ — that is the namespace
  // RV_FAILPOINTS specs address.  Tests arm ad-hoc names freely.
  if (!path_under(f.rel, "src/") && !path_under(f.rel, "tools/")) return;
  for (const char* macro :
       {"RV_FAILPOINT", "RV_FAILPOINT_AT", "RV_FAILPOINT_EVAL"}) {
    for (const std::size_t at : find_ident(f.code, macro)) {
      // Only literal-name invocations: `RV_FAILPOINT("a.b")`.  The
      // `#define RV_FAILPOINT(site)` lines have an identifier there
      // instead and fall through.
      std::size_t j = at + std::string_view(macro).size();
      while (j < f.code.size() &&
             std::isspace(static_cast<unsigned char>(f.code[j]))) {
        ++j;
      }
      if (j >= f.code.size() || f.code[j] != '(') continue;
      ++j;
      while (j < f.code.size() &&
             std::isspace(static_cast<unsigned char>(f.code[j]))) {
        ++j;
      }
      if (j >= f.code.size() || f.code[j] != '"') continue;
      const std::size_t close = f.code.find('"', j + 1);
      if (close == std::string::npos) continue;
      // The code view blanks literal contents at identical offsets, so
      // the name bytes come from the raw text.
      const std::string name = f.raw.substr(j + 1, close - j - 1);
      if (!valid_failpoint_site_name(name)) {
        lint.report(f, at, "failpoint-site",
                    "failpoint site '" + name +
                        "' must match [a-z0-9_.]+ (the RV_FAILPOINTS "
                        "spec grammar cannot address anything else)");
        continue;
      }
      const auto it = sites->find(name);
      if (it != sites->end()) {
        lint.report(f, at, "failpoint-site",
                    "duplicate failpoint site '" + name +
                        "' (also declared at " + it->second.first + ":" +
                        std::to_string(it->second.second) +
                        ") — site names must be unique so a spec targets "
                        "exactly one place");
      } else {
        (*sites)[name] = {f.rel, line_of(f.raw, at)};
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Wire-epoch guard
// ---------------------------------------------------------------------------

/// `struct <name> { ... };` block, or nullopt.
std::optional<std::string> extract_struct(const SourceFile& f,
                                          const std::string& name) {
  for (const std::size_t at : find_ident(f.code, name)) {
    // Must be a definition: preceded by `struct`, followed by `{`.
    std::size_t j = at + name.size();
    while (j < f.code.size() &&
           std::isspace(static_cast<unsigned char>(f.code[j]))) {
      ++j;
    }
    if (j >= f.code.size() || f.code[j] != '{') continue;
    const std::size_t close = match_at(f.code, j, '{', '}');
    if (close == std::string::npos) continue;
    std::size_t k = at;
    while (k > 0 && std::isspace(static_cast<unsigned char>(f.code[k - 1]))) {
      --k;
    }
    if (k < 6 || f.code.compare(k - 6, 6, "struct") != 0) continue;
    return f.raw.substr(at, close - at + 1);
  }
  return std::nullopt;
}

/// `<name>(...) { ... }` function definition block, or nullopt.
std::optional<std::string> extract_function(const SourceFile& f,
                                            const std::string& name) {
  for (const std::size_t at : find_ident(f.code, name)) {
    std::size_t j = at + name.size();
    while (j < f.code.size() &&
           std::isspace(static_cast<unsigned char>(f.code[j]))) {
      ++j;
    }
    if (j >= f.code.size() || f.code[j] != '(') continue;
    const std::size_t args_close = match_at(f.code, j, '(', ')');
    if (args_close == std::string::npos) continue;
    std::size_t k = args_close + 1;
    while (k < f.code.size() &&
           std::isspace(static_cast<unsigned char>(f.code[k]))) {
      ++k;
    }
    if (k >= f.code.size() || f.code[k] != '{') continue;  // a call, not a def
    const std::size_t close = match_at(f.code, k, '{', '}');
    if (close == std::string::npos) continue;
    return f.raw.substr(at, close - at + 1);
  }
  return std::nullopt;
}

/// Comment-stripped, whitespace-collapsed: doc edits don't move the
/// hash, any code/layout change of the schema does.
std::string normalize(const std::string& text) {
  const std::string code = strip_code(text);
  std::string out;
  out.reserve(code.size());
  bool in_space = true;
  for (const char c : code) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!in_space) out += ' ';
      in_space = true;
    } else {
      out += c;
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

/// The serialized-schema surface: which files and which named blocks
/// inside them define the cache wire format.  An empty block list
/// means "the whole file".
struct WireSurface {
  const char* file;
  std::vector<const char*> structs;
  std::vector<const char*> functions;
};

const std::vector<WireSurface>& wire_surfaces() {
  static const std::vector<WireSurface> surfaces = {
      {"src/engine/wire.hpp", {}, {}},
      {"src/sim/simulator.hpp", {"SimResult"}, {}},
      {"src/gather/multi_simulator.hpp", {"GatherResult"}, {}},
      {"src/rendezvous/core.hpp", {"Outcome"}, {}},
      {"src/analysis/coverage.hpp", {"CoveragePoint"}, {}},
      {"src/engine/families.hpp",
       {"SearchOutcome", "GatherOutcome", "LinearOutcome", "CoverageOutcome"},
       {}},
      {"src/engine/cache_store.cpp",
       {},
       {"put_sim_result", "put_gather_result", "serialize_entry"}},
  };
  return surfaces;
}

constexpr const char* kWireLockRel = "tools/sanitizers/wire_schema.lock";
constexpr const char* kEpochHeaderRel = "src/engine/cache_store.hpp";

struct WireState {
  std::string hash;   ///< hex digest of the normalized schema surface
  long epoch = -1;    ///< kEngineCacheEpoch as committed in the header
};

std::optional<WireState> compute_wire_state(const fs::path& root,
                                            std::string* error) {
  std::string material;
  for (const WireSurface& s : wire_surfaces()) {
    const auto raw = read_file(root / s.file);
    if (!raw) {
      *error = std::string("cannot read ") + s.file;
      return std::nullopt;
    }
    const SourceFile f = load_source(root / s.file, s.file, *raw);
    material += std::string("== ") + s.file + "\n";
    if (s.structs.empty() && s.functions.empty()) {
      material += normalize(f.raw);
      material += '\n';
    }
    for (const char* name : s.structs) {
      const auto block = extract_struct(f, name);
      if (!block) {
        *error = std::string("struct ") + name + " not found in " + s.file +
                 " (update the wire-surface list in tools/rv_lint.cpp)";
        return std::nullopt;
      }
      material += normalize(*block);
      material += '\n';
    }
    for (const char* name : s.functions) {
      const auto block = extract_function(f, name);
      if (!block) {
        *error = std::string("function ") + name + " not found in " + s.file +
                 " (update the wire-surface list in tools/rv_lint.cpp)";
        return std::nullopt;
      }
      material += normalize(*block);
      material += '\n';
    }
  }
  const auto header = read_file(root / kEpochHeaderRel);
  if (!header) {
    *error = std::string("cannot read ") + kEpochHeaderRel;
    return std::nullopt;
  }
  const std::string header_code = strip_code(*header);
  const std::size_t at = header_code.find("kEngineCacheEpoch");
  std::size_t eq = at == std::string::npos ? std::string::npos
                                           : header_code.find('=', at);
  if (eq == std::string::npos) {
    *error = std::string("kEngineCacheEpoch not found in ") + kEpochHeaderRel;
    return std::nullopt;
  }
  WireState state;
  state.epoch = std::strtol(header_code.c_str() + eq + 1, nullptr, 10);
  state.hash = hex64(fnv1a64(material));
  return state;
}

std::optional<WireState> read_wire_lock(const fs::path& root) {
  const auto text = read_file(root / kWireLockRel);
  if (!text) return std::nullopt;
  WireState state;
  std::istringstream in(*text);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "epoch") fields >> state.epoch;
    if (key == "hash") fields >> state.hash;
  }
  if (state.epoch < 0 || state.hash.size() != 16) return std::nullopt;
  return state;
}

bool write_wire_lock(const fs::path& root, const WireState& state) {
  std::error_code ec;
  fs::create_directories((root / kWireLockRel).parent_path(), ec);
  std::ostringstream out;
  out << "# wire_schema.lock — the blessed serialized-schema state.\n"
      << "#\n"
      << "# `rv_lint` hashes the cache wire surface (engine/wire.hpp, the\n"
      << "# outcome structs, the cache_store payload encoders) and fails\n"
      << "# when hash or kEngineCacheEpoch drift from this file: a schema\n"
      << "# change requires an epoch bump, and both require re-blessing\n"
      << "# with `rv_lint --update-wire-lock` in the same commit.\n"
      << "epoch " << state.epoch << "\n"
      << "hash " << state.hash << "\n";
  return write_file(root / kWireLockRel, out.str());
}

/// Checks (or, with `update`, re-blesses) the wire schema.  Returns
/// findings in the same stream as the textual rules.
void rule_wire_epoch(Linter& lint, const fs::path& root, bool update) {
  std::string error;
  const auto current = compute_wire_state(root, &error);
  SourceFile anchor;  // findings anchor at the lock file
  anchor.rel = kWireLockRel;
  anchor.raw = "";
  anchor.allows.emplace_back();
  if (!current) {
    lint.findings.push_back({"wire-epoch", kWireLockRel, 1, error});
    return;
  }
  if (update) {
    if (!write_wire_lock(root, *current)) {
      lint.findings.push_back({"wire-epoch", kWireLockRel, 1,
                               "cannot write the wire-schema lock"});
    } else {
      std::printf("rv_lint: wire lock re-blessed: epoch %ld, hash %s\n",
                  current->epoch, current->hash.c_str());
    }
    return;
  }
  const auto locked = read_wire_lock(root);
  if (!locked) {
    lint.findings.push_back(
        {"wire-epoch", kWireLockRel, 1,
         "missing or unreadable wire-schema lock — generate it with "
         "`rv_lint --update-wire-lock` and commit it"});
    return;
  }
  const bool hash_changed = current->hash != locked->hash;
  const bool epoch_changed = current->epoch != locked->epoch;
  if (hash_changed && !epoch_changed) {
    lint.findings.push_back(
        {"wire-epoch", kWireLockRel, 1,
         "serialized schema changed (hash " + locked->hash + " -> " +
             current->hash +
             ") without a kEngineCacheEpoch bump: persisted caches from "
             "the old engine would replay as current results.  Bump "
             "kEngineCacheEpoch in src/engine/cache_store.hpp, then "
             "re-bless with `rv_lint --update-wire-lock`"});
  } else if (epoch_changed && !hash_changed) {
    lint.findings.push_back(
        {"wire-epoch", kWireLockRel, 1,
         "kEngineCacheEpoch changed (" + std::to_string(locked->epoch) +
             " -> " + std::to_string(current->epoch) +
             ") but the lock was not re-blessed.  If the bump is "
             "intentional (it invalidates every persisted cache), run "
             "`rv_lint --update-wire-lock` and commit the lock with it"});
  } else if (hash_changed && epoch_changed) {
    lint.findings.push_back(
        {"wire-epoch", kWireLockRel, 1,
         "schema and epoch both changed but the lock still records epoch " +
             std::to_string(locked->epoch) + " / hash " + locked->hash +
             " — re-bless with `rv_lint --update-wire-lock` and commit "
             "the lock in the same change"});
  }
}

// ---------------------------------------------------------------------------
// Tree walk + driver
// ---------------------------------------------------------------------------

std::vector<fs::path> collect_files(const fs::path& root) {
  std::vector<fs::path> files;
  for (const char* top : {"src", "tools", "tests"}) {
    const fs::path dir = root / top;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file()) continue;
      const fs::path& p = it->path();
      if (p.extension() == ".cpp" || p.extension() == ".hpp") {
        files.push_back(p);
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int lint_tree(const fs::path& root, bool update_wire_lock, bool verbose) {
  Linter lint(verbose);
  FailpointSites sites;
  for (const fs::path& path : collect_files(root)) {
    const auto raw = read_file(path);
    if (!raw) {
      std::fprintf(stderr, "rv_lint: cannot read %s\n", path.c_str());
      return 2;
    }
    const std::string rel =
        fs::relative(path, root).generic_string();
    const SourceFile f = load_source(path, rel, *raw);
    rule_pragma_once(lint, f);
    rule_nondeterminism(lint, f);
    rule_float_type(lint, f);
    rule_stdout_write(lint, f);
    rule_catch_swallow(lint, f);
    rule_unordered_iteration(lint, f);
    rule_failpoint_site(lint, f, &sites);
  }
  rule_wire_epoch(lint, root, update_wire_lock);
  for (const Finding& finding : lint.findings) {
    std::fprintf(stderr, "rv_lint: %s:%zu: [%s] %s\n", finding.rel.c_str(),
                 finding.line, finding.rule.c_str(),
                 finding.message.c_str());
  }
  if (!lint.findings.empty()) {
    std::fprintf(stderr,
                 "rv_lint: %zu finding(s).  Fix them, or bless a "
                 "deliberately deterministic site with "
                 "`// rv-lint: allow(<rule>)` and a why\n",
                 lint.findings.size());
    return 1;
  }
  if (verbose) std::printf("rv_lint: clean\n");
  return 0;
}

// ---------------------------------------------------------------------------
// Self-test: every rule must demonstrably fire (and the allow escape
// must demonstrably suppress) on an injected scratch tree.
// ---------------------------------------------------------------------------

struct SelfTree {
  fs::path root;
  explicit SelfTree(const char* tag) {
    root = fs::temp_directory_path() /
           (std::string("rv_lint_selftest_") + tag + "_" +
            std::to_string(static_cast<unsigned>(
                fnv1a64(fs::current_path().string()) & 0xffff)));
    fs::remove_all(root);
  }
  ~SelfTree() {
    std::error_code ec;
    fs::remove_all(root, ec);
  }
  void put(const std::string& rel, const std::string& text) const {
    const fs::path path = root / rel;
    fs::create_directories(path.parent_path());
    if (!write_file(path, text)) {
      std::fprintf(stderr, "self-test: cannot write %s\n", path.c_str());
      std::exit(2);
    }
  }
};

/// Lints `root` and returns the findings (no printing).
std::vector<Finding> scan(const fs::path& root) {
  Linter lint(false);
  FailpointSites sites;
  for (const fs::path& path : collect_files(root)) {
    const auto raw = read_file(path);
    if (!raw) continue;
    const SourceFile f =
        load_source(path, fs::relative(path, root).generic_string(), *raw);
    rule_pragma_once(lint, f);
    rule_nondeterminism(lint, f);
    rule_float_type(lint, f);
    rule_stdout_write(lint, f);
    rule_catch_swallow(lint, f);
    rule_unordered_iteration(lint, f);
    rule_failpoint_site(lint, f, &sites);
  }
  return lint.findings;
}

int expect(const std::vector<Finding>& findings, const char* rule,
           std::size_t count, const char* what) {
  const std::size_t n = static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
  if (n != count) {
    std::fprintf(stderr,
                 "self-test FAIL: %s — expected %zu finding(s) of [%s], "
                 "got %zu\n",
                 what, count, rule, n);
    for (const Finding& f : findings) {
      std::fprintf(stderr, "  got: %s:%zu [%s] %s\n", f.rel.c_str(), f.line,
                   f.rule.c_str(), f.message.c_str());
    }
    return 1;
  }
  std::printf("-- self-test: %-52s OK\n", what);
  return 0;
}

/// Minimal but complete wire surface for the guard's self-test: every
/// file + block the production surface list names, in miniature.
void put_wire_surface(const SelfTree& tree, const char* sim_extra,
                      int epoch) {
  tree.put("src/engine/wire.hpp",
           "#pragma once\nnamespace w { inline int put() { return 1; } }\n");
  tree.put("src/sim/simulator.hpp",
           std::string("#pragma once\nstruct SimResult { double t;") +
               sim_extra + " };\n");
  tree.put("src/gather/multi_simulator.hpp",
           "#pragma once\nstruct GatherResult { double t; };\n");
  tree.put("src/rendezvous/core.hpp",
           "#pragma once\nstruct Outcome { double d; };\n");
  tree.put("src/analysis/coverage.hpp",
           "#pragma once\nstruct CoveragePoint { double f; };\n");
  tree.put("src/engine/families.hpp",
           "#pragma once\nstruct SearchOutcome { int found; };\n"
           "struct GatherOutcome { int g; };\n"
           "struct LinearOutcome { int l; };\n"
           "struct CoverageOutcome { int c; };\n");
  tree.put("src/engine/cache_store.cpp",
           "void put_sim_result() { }\n"
           "void put_gather_result() { }\n"
           "void serialize_entry() { }\n");
  tree.put("src/engine/cache_store.hpp",
           "#pragma once\ninline constexpr unsigned kEngineCacheEpoch = " +
               std::to_string(epoch) + ";\n");
}

int wire_guard_findings(const fs::path& root) {
  Linter lint(false);
  rule_wire_epoch(lint, root, false);
  for (const Finding& f : lint.findings) {
    std::printf("   (wire-epoch message: %s)\n", f.message.c_str());
  }
  return static_cast<int>(lint.findings.size());
}

int self_test() {
  int failures = 0;

  {  // --- textual rules: one injected violation each, then the escape
    SelfTree tree("rules");
    tree.put("src/engine/bad_float.hpp", "#pragma once\nfloat half(int);\n");
    tree.put("src/sim/bad_rand.cpp",
             "#include <cstdlib>\nint roll() { return std::rand(); }\n");
    tree.put("src/mathx/rng.cpp",
             "#include <random>\nint seed_entropy() { "
             "return (int)std::random_device{}(); }\n");
    tree.put("src/io/bad_print.cpp",
             "#include <iostream>\nvoid shout() { std::cout << 1; }\n");
    tree.put("src/engine/bad_catch.cpp",
             "void f();\nvoid g() { try { f(); } catch (...) { } }\n");
    tree.put("src/geom/bad_guard.hpp", "#include <vector>\n");
    tree.put("src/engine/bad_iter.cpp",
             "#include <unordered_map>\n"
             "int sum(const std::unordered_map<int, int>& histogram) {\n"
             "  int total = 0;\n"
             "  for (const auto& [k, v] : histogram) total += v;\n"
             "  return total;\n"
             "}\n");
    tree.put("tests/ok_comment.cpp",
             "// std::rand() and float and std::cout in a comment\n"
             "const char* s = \"time( puts( catch\";\n");
    const auto findings = scan(tree.root);
    failures += expect(findings, "float-type", 1, "float in src/engine fires");
    failures += expect(findings, "nondeterminism", 1,
                       "std::rand outside mathx/rng fires (rng exempt)");
    failures += expect(findings, "stdout-write", 1, "std::cout in src/ fires");
    failures += expect(findings, "catch-swallow", 1,
                       "swallowing catch (...) fires");
    failures += expect(findings, "pragma-once", 1,
                       "header without #pragma once fires");
    failures += expect(findings, "unordered-iteration", 1,
                       "unordered range-for in src/engine fires");
    // Exactly the six injected violations — nothing fired from the
    // rng exemption file or from tokens inside comments/strings.
    if (findings.size() != 6) {
      std::fprintf(stderr,
                   "self-test FAIL: expected exactly 6 findings, got %zu\n",
                   findings.size());
      for (const Finding& f : findings) {
        std::fprintf(stderr, "  got: %s:%zu [%s]\n", f.rel.c_str(), f.line,
                     f.rule.c_str());
      }
      ++failures;
    } else {
      std::printf("-- self-test: %-52s OK\n",
                  "comments/strings/exempt paths fire nothing");
    }
  }

  {  // --- failpoint-site: duplicate and bad-charset sites fire
    SelfTree tree("failpoint");
    tree.put("src/engine/a.cpp",
             "void fa() { RV_FAILPOINT(\"site.one\"); }\n");
    tree.put("src/engine/b.cpp",
             "void fb(int i) { RV_FAILPOINT_AT(\"site.one\", i); }\n");
    tree.put("src/engine/c.cpp",
             "void fc() { (void)RV_FAILPOINT_EVAL(\"Bad.Site\"); }\n");
    // #define lines and non-literal names are not declarations; test
    // code may reuse production names freely.
    tree.put("src/engine/d.hpp",
             "#pragma once\n#define RV_FAILPOINT(site) do { } while (0)\n"
             "void fd(const char* s);\n");
    tree.put("tests/t.cpp", "void ft() { RV_FAILPOINT(\"site.one\"); }\n");
    const auto findings = scan(tree.root);
    failures += expect(findings, "failpoint-site", 2,
                       "duplicate + bad-charset failpoint sites fire");

    SelfTree blessed("failpoint_allow");
    blessed.put("src/engine/a.cpp",
                "void fa() { RV_FAILPOINT(\"site.one\"); }\n");
    blessed.put("src/engine/b.cpp",
                "// rv-lint: allow(failpoint-site) — deliberately shared\n"
                "void fb() { RV_FAILPOINT(\"site.one\"); }\n");
    failures += expect(scan(blessed.root), "failpoint-site", 0,
                       "allow() escape blesses a shared failpoint site");

    // The serve layer's sites (serve.accept/dispatch/shard/reply)
    // joined the namespace in PR 10; the uniqueness check must catch
    // one of them re-declared in a second file just like any other.
    SelfTree serve_tree("failpoint_serve");
    serve_tree.put("src/engine/a.cpp",
                   "void fa() { (void)RV_FAILPOINT_EVAL(\"serve.reply\"); }\n");
    serve_tree.put("src/io/b.cpp",
                   "void fb(int i) { RV_FAILPOINT_AT(\"serve.reply\", i); }\n");
    failures += expect(scan(serve_tree.root), "failpoint-site", 1,
                       "a serve.* site declared twice fires uniqueness");
  }

  {  // --- stdout-write: raw fd/FILE* escapes to stdout fire too
    SelfTree tree("stdout");
    tree.put("src/engine/bad_fd.cpp",
             "#include <cstdio>\n#include <unistd.h>\n"
             "void leak(const char* s, unsigned long n) {\n"
             "  fwrite(s, 1, n, stdout);\n"
             "  (void)write(STDOUT_FILENO, s, n);\n"
             "  fputs(s, stdout);\n"
             "}\n");
    // fwrite( + fputs( + two `stdout` idents + STDOUT_FILENO.
    failures += expect(scan(tree.root), "stdout-write", 5,
                       "fwrite/fputs/stdout/STDOUT_FILENO in src/ fire");

    SelfTree blessed("stdout_allow");
    blessed.put("src/engine/framed.cpp",
                "#include <cstdio>\n"
                "// rv-lint: allow(stdout-write) — framed protocol writer\n"
                "void frame(const char* s) { fputs(s, stdout); }\n");
    failures += expect(scan(blessed.root), "stdout-write", 0,
                       "allow() escape blesses a framed stdout writer");
  }

  {  // --- the allow escape suppresses, on-line and line-above
    SelfTree tree("allow");
    tree.put("src/engine/blessed.cpp",
             "#include <unordered_map>\n"
             "int sum(const std::unordered_map<int, int>& histogram) {\n"
             "  int total = 0;\n"
             "  // rv-lint: allow(unordered-iteration) — order-independent sum\n"
             "  for (const auto& [k, v] : histogram) total += v;\n"
             "  return total;  // rv-lint: allow(float-type) wrong rule\n"
             "}\n"
             "float narrow();  // rv-lint: allow(float-type) blessed\n");
    failures += expect(scan(tree.root), "unordered-iteration", 0,
                       "allow() on the line above suppresses");
    failures += expect(scan(tree.root), "float-type", 0,
                       "allow() on the finding's own line suppresses");
  }

  {  // --- wire-epoch guard: blessed state passes
    SelfTree tree("wire");
    put_wire_surface(tree, "", 1);
    Linter lint(false);
    rule_wire_epoch(lint, tree.root, true);  // bless
    const int blessed = wire_guard_findings(tree.root);
    failures += expect(std::vector<Finding>(static_cast<std::size_t>(blessed),
                                            {"wire-epoch", "", 1, ""}),
                       "wire-epoch", 0, "blessed schema+epoch passes");

    // Schema change without an epoch bump must fail.
    put_wire_surface(tree, " double extra;", 1);
    failures +=
        expect(std::vector<Finding>(
                   static_cast<std::size_t>(wire_guard_findings(tree.root)),
                   {"wire-epoch", "", 1, ""}),
               "wire-epoch", 1, "schema change without epoch bump fails");

    // Epoch bump without re-blessing the lock must fail too.
    put_wire_surface(tree, "", 2);
    failures +=
        expect(std::vector<Finding>(
                   static_cast<std::size_t>(wire_guard_findings(tree.root)),
                   {"wire-epoch", "", 1, ""}),
               "wire-epoch", 1, "epoch bump without lock re-bless fails");

    // Schema change + epoch bump + re-bless is the sanctioned workflow.
    put_wire_surface(tree, " double extra;", 2);
    Linter rebless(false);
    rule_wire_epoch(rebless, tree.root, true);
    failures +=
        expect(std::vector<Finding>(
                   static_cast<std::size_t>(wire_guard_findings(tree.root)),
                   {"wire-epoch", "", 1, ""}),
               "wire-epoch", 0, "schema change + bump + re-bless passes");

    // A comment-only edit of a surface file must NOT move the hash.
    tree.put("src/rendezvous/core.hpp",
             "#pragma once\n// new doc comment\nstruct Outcome { double d; "
             "};  // trailing\n");
    failures +=
        expect(std::vector<Finding>(
                   static_cast<std::size_t>(wire_guard_findings(tree.root)),
                   {"wire-epoch", "", 1, ""}),
               "wire-epoch", 0, "comment-only schema edit keeps the hash");
  }

  if (failures == 0) std::printf("self-test: every rule fires and escapes\n");
  return failures == 0 ? 0 : 1;
}

void usage() {
  std::fprintf(stderr,
               "usage: rv_lint [--root <dir>] [--verbose]\n"
               "       rv_lint --root <dir> --update-wire-lock\n"
               "       rv_lint --self-test\n");
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  bool update_wire_lock = false;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      return self_test();
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--update-wire-lock") {
      update_wire_lock = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      usage();
      return 2;
    }
  }
  std::error_code ec;
  if (!fs::is_directory(root / "src", ec)) {
    std::fprintf(stderr, "rv_lint: %s does not look like the repo root\n",
                 root.c_str());
    return 2;
  }
  return lint_tree(root, update_wire_lock, verbose);
}
