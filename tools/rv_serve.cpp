/// \file rv_serve.cpp
/// The scenario engine as a long-lived daemon.
///
/// Promotes `rv_batch` from one-shot CLI to a resident service over
/// `src/engine/serve.*`: requests (newline-delimited JSON headers with
/// optional raw `.rvset` bodies) arrive on stdin or a Unix socket,
/// hits are answered from the warm persistent cache, misses batched
/// and dispatched through the Runner/shard machinery, and every reply
/// payload is byte-identical to `rv_batch run` on the same
/// declaration.  See docs/OPERATIONS.md ("Operating rv_serve") for
/// the protocol, counters, and failure drills.
///
///     rv_serve --cache-dir cache/                  # stdin/stdout
///     rv_serve --socket /tmp/rv.sock --cache-dir cache/
///
/// Exit codes: 0 (EOF or clean shutdown request), 1 (usage),
/// 2 (runtime failure).

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <streambuf>
#include <string>
#include <thread>
#include <vector>

#include "engine/serve.hpp"
#include "io/args.hpp"
#include "rv_batch_sets.hpp"

namespace {

constexpr int kExitUsage = 1;
constexpr int kExitFailure = 2;

/// Minimal bidirectional streambuf over one file descriptor (the
/// per-connection transport of socket mode).
class FdStreambuf : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {
    setg(in_, in_, in_);
    setp(out_, out_ + sizeof out_);
  }
  ~FdStreambuf() override { sync(); }
  FdStreambuf(const FdStreambuf&) = delete;
  FdStreambuf& operator=(const FdStreambuf&) = delete;

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    const ssize_t n = ::read(fd_, in_, sizeof in_);
    if (n <= 0) return traits_type::eof();
    setg(in_, in_, in_ + n);
    return traits_type::to_int_type(*gptr());
  }
  int_type overflow(int_type ch) override {
    if (flush_buffer() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }
  int sync() override { return flush_buffer(); }

 private:
  int flush_buffer() {
    const char* p = pbase();
    std::size_t left = static_cast<std::size_t>(pptr() - pbase());
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n <= 0) return -1;
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    setp(out_, out_ + sizeof out_);
    return 0;
  }

  int fd_;
  char in_[4096];
  char out_[4096];
};

int run_socket(rv::engine::serve::Service& service, const std::string& path,
               bool quiet) {
  // A client vanishing mid-reply must not SIGPIPE the daemon.
  std::signal(SIGPIPE, SIG_IGN);
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    throw std::runtime_error(std::string("socket() failed: ") +
                             std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(listener);
    throw std::invalid_argument("--socket path too long (max " +
                                std::to_string(sizeof addr.sun_path - 1) +
                                " bytes)");
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    ::close(listener);
    throw std::runtime_error("bind(" + path +
                             ") failed: " + std::strerror(errno));
  }
  if (::listen(listener, 16) != 0) {
    ::close(listener);
    throw std::runtime_error("listen(" + path +
                             ") failed: " + std::strerror(errno));
  }
  if (!quiet) std::cerr << "rv_serve: listening on " << path << "\n";
  std::atomic<bool> stop{false};
  std::vector<std::thread> connections;
  std::mutex connections_mutex;
  for (;;) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (stop.load() || errno != EINTR) break;
      continue;
    }
    const std::lock_guard<std::mutex> lock(connections_mutex);
    connections.emplace_back([fd, listener, &service, &stop] {
      FdStreambuf buffer(fd);
      std::istream in(&buffer);
      std::ostream out(&buffer);
      const bool shutdown = rv::engine::serve::serve_stream(service, in, out);
      out.flush();
      ::close(fd);
      if (shutdown && !stop.exchange(true)) {
        // Wake the accept loop; it observes `stop` and exits.
        ::shutdown(listener, SHUT_RDWR);
      }
    });
  }
  ::close(listener);
  {
    const std::lock_guard<std::mutex> lock(connections_mutex);
    for (std::thread& connection : connections) connection.join();
  }
  ::unlink(path.c_str());
  if (!quiet) std::cerr << "rv_serve: shut down\n";
  return 0;
}

void usage(std::ostream& os) {
  os << "usage: rv_serve [flags]\n"
     << "  --socket PATH             serve a Unix socket instead of "
        "stdin/stdout\n"
     << "  --cache-dir DIR           persistent *.rvcache directory "
        "(warm-loaded\n"
     << "                            at boot, misses persisted back)\n"
     << "  --queue-depth N           admission queue bound (default 64)\n"
     << "  --workers N               dispatch worker threads (default 1:\n"
     << "                            replies in admission order)\n"
     << "  --threads T               runner threads per dispatch "
        "(0 = hardware)\n"
     << "  --procs P                 forked shard workers per dispatch "
        "(default 1\n"
     << "                            = in-process; >1 needs --cache-dir)\n"
     << "  --compact-interval-sec S  run compact_cache_dir every S seconds\n"
     << "  --compact-max-age-days D  compaction: evict files older than D\n"
     << "  --compact-max-bytes N     compaction: byte budget, oldest out "
        "first\n"
     << "  --retry-after-ms MS       backoff hint on 'overloaded' replies\n"
     << "  --retries R               fork mode: extra attempts per failed "
        "shard\n"
     << "  --shard-timeout SEC       fork mode: per-attempt deadline "
        "(0 = none;\n"
     << "                            request deadlines tighten it per "
        "request)\n"
     << "  --backoff-ms MS           fork mode: base retry backoff\n"
     << "  --quiet                   suppress stderr diagnostics\n"
     << "exit codes: 0 ok (EOF or shutdown request), 1 usage, 2 failure\n";
}

}  // namespace

int main(int argc, char** argv) {
  rv::io::Args args;
  args.declare("socket", "", "Unix socket path (empty = stdin/stdout)");
  args.declare("cache-dir", "", "directory of persistent *.rvcache files");
  args.declare_int("queue-depth", 64, "admission queue bound");
  args.declare_int("workers", 1, "dispatch worker threads");
  args.declare_int("threads", 0, "runner threads per dispatch (0 = hardware)");
  args.declare_int("procs", 1, "forked shard workers per dispatch");
  args.declare_double("compact-interval-sec", 0.0,
                      "compaction timer period (0 = off)");
  args.declare_double("compact-max-age-days", 0.0,
                      "compaction: evict cache files older than this");
  args.declare("compact-max-bytes", "",
               "compaction: byte budget, evicting oldest files first");
  args.declare_int("retry-after-ms", 100,
                   "backoff hint carried by 'overloaded' replies");
  args.declare_int("retries", 0,
                   "fork mode: extra attempts per failed shard");
  args.declare_double("shard-timeout", 0.0,
                      "fork mode: per-attempt deadline in seconds");
  args.declare_int("backoff-ms", 100,
                   "fork mode: base retry backoff in milliseconds");
  args.declare_bool("quiet", "suppress stderr diagnostics");
  try {
    args.parse(argc, argv);
    if (args.help_requested()) {
      usage(std::cout);
      return 0;
    }
    rv::engine::serve::Options options;
    if (args.get_int("queue-depth") <= 0) {
      throw std::invalid_argument("--queue-depth must be > 0");
    }
    if (args.get_int("workers") <= 0) {
      throw std::invalid_argument("--workers must be > 0");
    }
    if (args.get_int("procs") <= 0) {
      throw std::invalid_argument("--procs must be > 0");
    }
    if (args.get_int("threads") < 0) {
      throw std::invalid_argument("--threads must be >= 0");
    }
    if (args.get_int("retry-after-ms") < 0) {
      throw std::invalid_argument("--retry-after-ms must be >= 0");
    }
    if (args.get_int("retries") < 0) {
      throw std::invalid_argument("--retries must be >= 0");
    }
    options.queue_depth = static_cast<std::size_t>(args.get_int("queue-depth"));
    options.workers = static_cast<unsigned>(args.get_int("workers"));
    options.threads = static_cast<unsigned>(args.get_int("threads"));
    options.procs = static_cast<std::size_t>(args.get_int("procs"));
    options.cache_dir = args.get("cache-dir");
    options.compact_interval_sec = args.get_double("compact-interval-sec");
    options.compact.max_age_days = args.get_double("compact-max-age-days");
    const std::string max_bytes = args.get("compact-max-bytes");
    if (!max_bytes.empty()) {
      std::size_t consumed = 0;
      options.compact.max_bytes = std::stoull(max_bytes, &consumed);
      if (consumed != max_bytes.size()) {
        throw std::invalid_argument("--compact-max-bytes must be an integer");
      }
    }
    options.retry_after_ms =
        static_cast<std::uint64_t>(args.get_int("retry-after-ms"));
    options.supervisor.retries =
        static_cast<std::size_t>(args.get_int("retries"));
    options.supervisor.timeout_sec = args.get_double("shard-timeout");
    options.supervisor.backoff_ms =
        static_cast<std::uint64_t>(args.get_int("backoff-ms"));
    options.resolver = [](const std::string& name) {
      return rv::batch::build_builtin_set(name);
    };
    if (!args.get_bool("quiet")) {
      options.log = [](const std::string& message) {
        std::cerr << message << "\n";
      };
    }
    rv::engine::serve::Service service(std::move(options));
    const std::string socket_path = args.get("socket");
    if (!socket_path.empty()) {
      return run_socket(service, socket_path, args.get_bool("quiet"));
    }
    (void)rv::engine::serve::serve_stream(service, std::cin, std::cout);
    return 0;
  } catch (const std::invalid_argument& e) {
    std::cerr << "rv_serve: " << e.what() << "\n";
    usage(std::cerr);
    return kExitUsage;
  } catch (const std::exception& e) {
    std::cerr << "rv_serve: " << e.what() << "\n";
    return kExitFailure;
  }
}
