#pragma once

/// \file rv_batch_sets.hpp
/// The built-in scenario sets of the `rv_batch` front-end.
///
/// `ScenarioSet`s are C++ declarations, so a batch *tool* needs a
/// registry of named sets it can materialise on request.  These five —
/// one per workload family — are deliberately small (they run in
/// seconds), fully deterministic, and built only from cacheable cells
/// (built-in programs, no anonymous factories, no components-only
/// items), so a sharded run can persist every outcome and a merge can
/// replay the whole set from cache files with zero recomputation.
/// Their single-process outputs are pinned byte-for-byte in
/// tests/test_golden_shard.cpp; treat any change to the declarations
/// as an output-breaking change (regenerate the pins).

#include <stdexcept>
#include <string>
#include <vector>

#include "engine/scenario_set.hpp"
#include "linear/zigzag.hpp"
#include "search/times.hpp"

namespace rv::batch {

/// One named, self-contained scenario declaration.
struct BuiltinSet {
  const char* name;
  const char* description;
  engine::ScenarioSet (*build)();
};

inline engine::ScenarioSet build_rendezvous_grid() {
  engine::ScenarioSet set;
  rendezvous::Scenario base;
  base.visibility = 0.25;
  base.max_time = 5e3;  // bounds the infeasible corners of the grid
  set.base(base)
      .speeds({1.0, 1.5})
      .time_units({1.0, 2.0})
      .orientations({0.0, 0.7})
      .chiralities({1, -1})
      .distances({1.0})
      .algorithm(rendezvous::AlgorithmChoice::kAlgorithm7);
  return set;
}

inline engine::ScenarioSet build_search_ring() {
  engine::SearchCell base;
  base.angles = 8;
  base.angle_offset = 0.03;
  engine::ScenarioSet set;
  set.search_base(base)
      .search_distances({1.0, 2.0})
      .search_radii({0.25, 0.125})
      .search_programs({engine::SearchProgram::kAlgorithm4,
                        engine::SearchProgram::kSquareSpiral})
      .search_horizon([](const engine::SearchCell& c) {
        return search::time_first_rounds(
                   search::guaranteed_round(c.distance, c.visibility)) +
               1.0;
      });
  return set;
}

inline engine::ScenarioSet build_gather_fleet() {
  const auto mk = [](double v, double tau) {
    geom::RobotAttributes a;
    a.speed = v;
    a.time_unit = tau;
    return a;
  };
  struct Fleet {
    const char* label;
    std::vector<geom::RobotAttributes> attrs;
  };
  const std::vector<Fleet> fleets{
      {"distinct speeds", {mk(1.0, 1.0), mk(1.5, 1.0), mk(2.0, 1.0)}},
      {"distinct clocks", {mk(1.0, 1.0), mk(1.0, 0.5), mk(1.0, 0.75)}},
      {"mixed quartet",
       {mk(1.0, 1.0), mk(2.0, 1.0), mk(1.0, 0.5), mk(1.5, 0.75)}},
  };
  engine::ScenarioSet set;
  for (const Fleet& fleet : fleets) {
    engine::GatherCell cell;
    cell.fleet = fleet.attrs;
    cell.ring_radius = 1.0;
    cell.visibility = 0.2;
    cell.algorithm = rendezvous::AlgorithmChoice::kAlgorithm7;
    cell.contact_max_time = 1e5;
    cell.gather_max_time = 2e5;
    set.add_gather(cell, fleet.label);
  }
  return set;
}

inline engine::ScenarioSet build_linear_line() {
  engine::LinearCell base;
  base.mode = engine::LinearMode::kZigZagSearch;
  base.visibility = 1e-3;
  engine::ScenarioSet set;
  set.linear_base(base)
      .linear_distances({1.0, -2.0, 4.0})
      .linear_horizon([](const engine::LinearCell& c) {
        return c.mode == engine::LinearMode::kZigZagSearch
                   ? linear::zigzag_reach_bound(c.target) + 1.0
                   : c.max_time;
      });
  engine::LinearCell rendezvous_cell;
  rendezvous_cell.mode = engine::LinearMode::kRendezvous;
  rendezvous_cell.attrs.speed = 1.5;
  rendezvous_cell.target = 1.0;
  rendezvous_cell.visibility = 0.05;
  rendezvous_cell.max_time = 1e4;
  set.add_linear(rendezvous_cell);
  return set;
}

inline engine::ScenarioSet build_coverage_disk() {
  engine::CoverageCell base;
  base.disk_radius = 1.5;
  base.visibility = 0.1;
  base.cell = 0.05;
  base.checkpoints = 16;
  engine::ScenarioSet set;
  set.coverage_base(base)
      .coverage_programs({engine::SearchProgram::kAlgorithm4,
                          engine::SearchProgram::kConcentric,
                          engine::SearchProgram::kSquareSpiral})
      .coverage_horizon([](const engine::CoverageCell& c) {
        return 2.0 * search::time_first_rounds(search::guaranteed_round(
                         c.disk_radius, c.visibility));
      });
  return set;
}

/// All built-in sets, in display order (one per workload family).
inline const std::vector<BuiltinSet>& builtin_sets() {
  static const std::vector<BuiltinSet> sets{
      {"rendezvous-grid",
       "2-robot attribute grid (v x tau x phi x chi), Algorithm 7",
       &build_rendezvous_grid},
      {"search-ring",
       "search (d x r x program) grid over an 8-angle target ring",
       &build_search_ring},
      {"gather-fleet", "three heterogeneous fleets on a unit origin ring",
       &build_gather_fleet},
      {"linear-line",
       "1-D zigzag search depths plus one linear-rendezvous cell",
       &build_linear_line},
      {"coverage-disk",
       "swept-area series of the three programs against one (R, r) disk",
       &build_coverage_disk},
  };
  return sets;
}

/// Builds the named set.  \throws std::invalid_argument (listing the
/// valid names) when `name` is unknown.
inline engine::ScenarioSet build_builtin_set(const std::string& name) {
  for (const BuiltinSet& set : builtin_sets()) {
    if (name == set.name) return set.build();
  }
  std::string message = "unknown set '" + name + "'; available:";
  for (const BuiltinSet& set : builtin_sets()) {
    message += " ";
    message += set.name;
  }
  throw std::invalid_argument(message);
}

}  // namespace rv::batch
