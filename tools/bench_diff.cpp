// bench_diff — compare two google-benchmark JSON outputs and fail on
// regressions.
//
// The repository commits BENCH_engine.json (the engine perf
// trajectory); CI regenerates it from a Release build every run.  This
// tool turns that artifact into a *gate*: given a baseline and a
// candidate file it matches benchmark series by name, computes the
// relative change of the chosen metric, and exits non-zero when any
// selected series regresses by more than the threshold — or when a
// selected series silently disappears from the candidate.
//
//   bench_diff <baseline.json> <candidate.json>
//              [--series <substring>]...      restrict to matching names
//              [--max-regress-pct <X>]        default 10
//              [--metric real_time|cpu_time]  default real_time
//              [--require-optimized]          candidate context must carry
//                                             "rv_optimized_build": "true"
//   bench_diff --self-test                    verify the gate on synthetic
//                                             data (injects a regression
//                                             and expects it to be caught)
//
// Exit codes: 0 pass, 1 regression/gate failure, 2 usage or parse error.
//
// The parser is deliberately minimal: it understands exactly the JSON
// google-benchmark emits (a "context" object followed by a
// "benchmarks" array whose entries carry "name" and the time fields) —
// no third-party JSON dependency, nothing outside the toolchain the
// image bakes in.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Series {
  std::string name;
  double real_time = 0.0;
  double cpu_time = 0.0;
};

struct BenchFile {
  std::string optimized;  ///< context "rv_optimized_build" (empty if absent)
  std::string build_type;  ///< context "library_build_type" (informational)
  std::vector<Series> series;
};

// Finds `"key":` at top level of the text from `from`; returns the
// position just past the colon, or npos.  The leading quote in the
// needle keeps suffix keys ("run_name" vs "name") from matching.
std::size_t find_key(const std::string& text, const char* key,
                     std::size_t from) {
  const std::string needle = std::string("\"") + key + "\"";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos) return std::string::npos;
  std::size_t p = at + needle.size();
  while (p < text.size() && (text[p] == ' ' || text[p] == ':')) ++p;
  return p;
}

std::optional<std::string> parse_string_at(const std::string& text,
                                           std::size_t p) {
  if (p >= text.size() || text[p] != '"') return std::nullopt;
  const std::size_t end = text.find('"', p + 1);
  if (end == std::string::npos) return std::nullopt;
  return text.substr(p + 1, end - p - 1);
}

// Parses the JSON number starting exactly at `p`.  `strtod` alone
// accepts tokens strict google-benchmark JSON never emits — "inf",
// "nan", hex floats like "0x1p4", leading whitespace — so a corrupt
// BENCH file could sail through the gate as a huge (or tiny)
// "baseline".  Validate the JSON number grammar
// `-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?` first and convert
// only the validated span.
std::optional<double> parse_number_at(const std::string& text, std::size_t p) {
  const auto digit = [&](std::size_t i) {
    return i < text.size() && text[i] >= '0' && text[i] <= '9';
  };
  std::size_t q = p;
  if (q < text.size() && text[q] == '-') ++q;
  if (!digit(q)) return std::nullopt;
  if (text[q] == '0') {
    ++q;
    if (digit(q)) return std::nullopt;  // JSON forbids leading zeros ("01")
  } else {
    while (digit(q)) ++q;
  }
  if (q < text.size() && text[q] == '.') {
    ++q;
    if (!digit(q)) return std::nullopt;
    while (digit(q)) ++q;
  }
  if (q < text.size() && (text[q] == 'e' || text[q] == 'E')) {
    ++q;
    if (q < text.size() && (text[q] == '+' || text[q] == '-')) ++q;
    if (!digit(q)) return std::nullopt;
    while (digit(q)) ++q;
  }
  // The token must end at a JSON delimiter — "0x1p4" must not sneak
  // through as "0" plus ignored junk.
  if (q < text.size()) {
    const char next = text[q];
    if (next != ',' && next != '}' && next != ']' && next != ' ' &&
        next != '\t' && next != '\n' && next != '\r') {
      return std::nullopt;
    }
  }
  const std::string token = text.substr(p, q - p);
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return std::nullopt;
  return v;
}

std::optional<BenchFile> parse_bench_json(const std::string& text) {
  BenchFile out;
  const std::size_t benchmarks = text.find("\"benchmarks\"");
  if (benchmarks == std::string::npos) return std::nullopt;

  // Context flags live before the benchmarks array.
  const std::string context = text.substr(0, benchmarks);
  if (const auto p = find_key(context, "rv_optimized_build", 0);
      p != std::string::npos) {
    out.optimized = parse_string_at(context, p).value_or("");
  }
  if (const auto p = find_key(context, "library_build_type", 0);
      p != std::string::npos) {
    out.build_type = parse_string_at(context, p).value_or("");
  }

  std::size_t cursor = benchmarks;
  while (true) {
    const std::size_t name_at = find_key(text, "name", cursor);
    if (name_at == std::string::npos) break;
    const auto name = parse_string_at(text, name_at);
    const std::size_t real_at = find_key(text, "real_time", name_at);
    const std::size_t cpu_at = find_key(text, "cpu_time", name_at);
    if (!name || real_at == std::string::npos ||
        cpu_at == std::string::npos) {
      break;
    }
    const auto real = parse_number_at(text, real_at);
    const auto cpu = parse_number_at(text, cpu_at);
    if (!real || !cpu) return std::nullopt;
    // First occurrence wins (repetition aggregates repeat the name).
    const bool seen =
        std::any_of(out.series.begin(), out.series.end(),
                    [&](const Series& s) { return s.name == *name; });
    if (!seen) out.series.push_back({*name, *real, *cpu});
    cursor = std::max(real_at, cpu_at);
  }
  return out;
}

std::optional<BenchFile> load_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = parse_bench_json(buf.str());
  if (!parsed) {
    std::fprintf(stderr, "bench_diff: %s is not google-benchmark JSON\n",
                 path.c_str());
  }
  return parsed;
}

struct Options {
  std::string baseline;
  std::string candidate;
  std::vector<std::string> series_filters;
  double max_regress_pct = 10.0;
  bool use_cpu_time = false;
  bool require_optimized = false;
};

bool name_selected(const Options& opts, const std::string& name) {
  if (opts.series_filters.empty()) return true;
  return std::any_of(opts.series_filters.begin(), opts.series_filters.end(),
                     [&](const std::string& f) {
                       return name.find(f) != std::string::npos;
                     });
}

const Series* find_series(const BenchFile& file, const std::string& name) {
  for (const Series& s : file.series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

// Core comparison; returns the number of gate failures and prints the
// per-series report.
int compare(const Options& opts, const BenchFile& base,
            const BenchFile& cand) {
  int failures = 0;
  if (opts.require_optimized && cand.optimized != "true") {
    std::fprintf(stderr,
                 "bench_diff: candidate context lacks \"rv_optimized_build\": "
                 "\"true\" (got \"%s\", library_build_type \"%s\") — "
                 "unoptimized timings are not comparable\n",
                 cand.optimized.c_str(), cand.build_type.c_str());
    ++failures;
  }
  std::printf("%-44s %14s %14s %9s\n", "series", "baseline(ns)",
              "candidate(ns)", "delta");
  int selected = 0;
  for (const Series& b : base.series) {
    if (!name_selected(opts, b.name)) continue;
    ++selected;
    const Series* c = find_series(cand, b.name);
    if (!c) {
      std::printf("%-44s %14.1f %14s %9s  MISSING\n", b.name.c_str(),
                  opts.use_cpu_time ? b.cpu_time : b.real_time, "-", "-");
      ++failures;
      continue;
    }
    const double bv = opts.use_cpu_time ? b.cpu_time : b.real_time;
    const double cv = opts.use_cpu_time ? c->cpu_time : c->real_time;
    const double pct = bv > 0.0 ? (cv - bv) / bv * 100.0 : 0.0;
    const bool regressed = pct > opts.max_regress_pct;
    std::printf("%-44s %14.1f %14.1f %+8.1f%%%s\n", b.name.c_str(), bv, cv,
                pct, regressed ? "  REGRESSION" : "");
    if (regressed) ++failures;
  }
  if (selected == 0) {
    std::fprintf(stderr,
                 "bench_diff: no baseline series matched the filters — the "
                 "gate would be vacuous\n");
    ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "bench_diff: %d failure(s) at threshold +%.1f%% on %s\n",
                 failures, opts.max_regress_pct,
                 opts.use_cpu_time ? "cpu_time" : "real_time");
  }
  return failures;
}

// Synthetic end-to-end check of the gate: a baseline and a candidate
// with one series regressed well past any sane threshold must fail,
// and the same candidate with the regression removed must pass.  Run
// by CTest (bench_diff_selftest) and by the CI perf step, so a broken
// comparator cannot silently wave regressions through.
int self_test() {
  const char* base_json = R"({
    "context": {"rv_optimized_build": "true",
                "library_build_type": "release"},
    "benchmarks": [
      {"name": "BM_A/10", "run_name": "BM_A/10",
       "real_time": 100.0, "cpu_time": 99.0, "time_unit": "ns"},
      {"name": "BM_B/10", "run_name": "BM_B/10",
       "real_time": 200.0, "cpu_time": 198.0, "time_unit": "ns"}
    ]})";
  const char* regressed_json = R"({
    "context": {"rv_optimized_build": "true",
                "library_build_type": "release"},
    "benchmarks": [
      {"name": "BM_A/10", "run_name": "BM_A/10",
       "real_time": 180.0, "cpu_time": 178.0, "time_unit": "ns"},
      {"name": "BM_B/10", "run_name": "BM_B/10",
       "real_time": 201.0, "cpu_time": 199.0, "time_unit": "ns"}
    ]})";
  const char* unoptimized_json = R"({
    "context": {"rv_optimized_build": "false",
                "library_build_type": "debug"},
    "benchmarks": [
      {"name": "BM_A/10", "run_name": "BM_A/10",
       "real_time": 100.0, "cpu_time": 99.0, "time_unit": "ns"}
    ]})";

  // Corrupt files carrying non-JSON number tokens (strtod would happily
  // read "inf", "nan" or a hex float as a giant/garbage baseline) must
  // fail the parse instead of entering the comparison.
  const char* corrupt_jsons[] = {
      R"({"benchmarks": [{"name": "BM_A/10",
          "real_time": inf, "cpu_time": 99.0}]})",
      R"({"benchmarks": [{"name": "BM_A/10",
          "real_time": nan, "cpu_time": 99.0}]})",
      R"({"benchmarks": [{"name": "BM_A/10",
          "real_time": 0x1p4, "cpu_time": 99.0}]})",
      R"({"benchmarks": [{"name": "BM_A/10",
          "real_time": 01.5, "cpu_time": 99.0}]})",
  };

  const auto base = parse_bench_json(base_json);
  const auto regressed = parse_bench_json(regressed_json);
  const auto unoptimized = parse_bench_json(unoptimized_json);
  if (!base || !regressed || !unoptimized || base->series.size() != 2) {
    std::fprintf(stderr, "self-test: parser failed on synthetic JSON\n");
    return 1;
  }
  std::printf("-- self-test: non-JSON number tokens must fail the parse\n");
  for (const char* corrupt : corrupt_jsons) {
    if (parse_bench_json(corrupt)) {
      std::fprintf(stderr,
                   "self-test: corrupt number token accepted: %s\n", corrupt);
      return 1;
    }
  }

  Options opts;
  opts.max_regress_pct = 25.0;
  std::printf("-- self-test: injected +80%% regression must be caught\n");
  if (compare(opts, *base, *regressed) == 0) {
    std::fprintf(stderr, "self-test: injected regression NOT caught\n");
    return 1;
  }
  std::printf("-- self-test: identical files must pass\n");
  if (compare(opts, *base, *base) != 0) {
    std::fprintf(stderr, "self-test: identical files flagged\n");
    return 1;
  }
  std::printf("-- self-test: missing series must be caught\n");
  opts.series_filters = {"BM_B"};
  if (compare(opts, *base, *unoptimized) == 0) {
    std::fprintf(stderr, "self-test: missing series NOT caught\n");
    return 1;
  }
  std::printf("-- self-test: unoptimized candidate must be rejected\n");
  opts.series_filters = {"BM_A"};
  opts.require_optimized = true;
  if (compare(opts, *base, *unoptimized) == 0) {
    std::fprintf(stderr, "self-test: unoptimized candidate NOT rejected\n");
    return 1;
  }
  std::printf("self-test: all gates behave\n");
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: bench_diff <baseline.json> <candidate.json>\n"
      "                  [--series <substring>]... [--max-regress-pct <X>]\n"
      "                  [--metric real_time|cpu_time] [--require-optimized]\n"
      "       bench_diff --self-test\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      return self_test() == 0 ? 0 : 1;
    } else if (arg == "--series" && i + 1 < argc) {
      opts.series_filters.emplace_back(argv[++i]);
    } else if (arg == "--max-regress-pct" && i + 1 < argc) {
      opts.max_regress_pct = std::atof(argv[++i]);
    } else if (arg == "--metric" && i + 1 < argc) {
      const std::string metric = argv[++i];
      if (metric == "cpu_time") {
        opts.use_cpu_time = true;
      } else if (metric != "real_time") {
        usage();
        return 2;
      }
    } else if (arg == "--require-optimized") {
      opts.require_optimized = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    usage();
    return 2;
  }
  const auto base = load_bench_file(positional[0]);
  const auto cand = load_bench_file(positional[1]);
  if (!base || !cand) return 2;
  return compare(opts, *base, *cand) == 0 ? 0 : 1;
}
