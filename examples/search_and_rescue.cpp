// search_and_rescue — the paper's motivating application (Section 1.2
// cites search-and-rescue operations): a single robot with limited
// visibility must locate a stationary casualty at unknown distance.
//
// Runs Algorithm 4 against the target, prints the discovery time vs
// the Theorem 1 bound, and renders the searched annuli plus the flown
// trajectory to an SVG.
//
//   $ ./search_and_rescue [--d 1.8] [--angle 2.3] [--r 0.2]
//                         [--svg rescue.svg]

#include <iostream>

#include "io/args.hpp"
#include "io/table.hpp"
#include "search/algorithm4.hpp"
#include "search/paths.hpp"
#include "search/times.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "viz/plot.hpp"

int main(int argc, char** argv) {
  using namespace rv;

  io::Args args;
  args.declare_double("d", 1.8, "distance to the casualty");
  args.declare_double("angle", 2.3, "bearing of the casualty (radians)");
  args.declare_double("r", 0.2, "visibility radius of the robot");
  args.declare("svg", "rescue.svg", "output SVG file");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n' << args.usage("search_and_rescue");
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.usage("search_and_rescue");
    return 0;
  }

  const double d = args.get_double("d");
  const double r = args.get_double("r");
  const geom::Vec2 target = geom::polar(d, args.get_double("angle"));

  std::cout << "casualty at " << target << " (d = " << d << "), visibility r = "
            << r << "\n";

  const int guaranteed = search::guaranteed_round(d, r);
  const double guarantee_time =
      search::time_first_rounds(guaranteed);
  std::cout << "coverage guarantee: found by round " << guaranteed
            << " (t <= " << guarantee_time << ")\n";
  if (search::theorem1_bound_applicable(d, r)) {
    std::cout << "Theorem 1 bound: t < " << search::theorem1_bound(d, r)
              << "\n";
  }

  sim::SimOptions opts;
  opts.visibility = r;
  opts.max_time = guarantee_time + 1.0;
  const auto res =
      sim::simulate_search(search::make_search_program(), target, opts);
  if (!res.met) {
    std::cerr << "search failed before the guarantee — this is a bug\n";
    return 1;
  }
  std::cout << "FOUND at t = " << res.time << " — robot at " << res.position1
            << ", casualty within visibility (sep = " << res.distance
            << ")\n";

  // Render: the trajectory actually flown until discovery, the annulus
  // structure of the final round, the casualty, and its visibility disk.
  sim::GlobalTrace trace(search::make_search_program(),
                         geom::reference_attributes(), {0.0, 0.0},
                         res.time + 1e-6);
  viz::TrajectorySeries flown;
  flown.points = trace.polyline(1e-3);
  flown.color = "#1f77b4";
  flown.label = "Algorithm 4 trajectory (t = 0 .. " +
                io::format_fixed(res.time, 1) + ")";
  auto canvas = viz::plot_trajectories({flown});
  viz::Style target_style;
  target_style.stroke = "#d62728";
  canvas.circle(target, r, target_style);
  canvas.marker(target, "#d62728");
  canvas.save(args.get("svg"));
  std::cout << "trajectory rendered to " << args.get("svg") << '\n';
  return 0;
}
