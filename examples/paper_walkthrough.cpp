// paper_walkthrough — the paper, executed: walks through Sections 2–4
// statement by statement, printing the live numbers this library
// computes for each.  Think of it as an executable abstract.
//
//   $ ./paper_walkthrough

#include <iostream>

#include "analysis/bounds.hpp"
#include "analysis/reduction.hpp"
#include "geom/difference_map.hpp"
#include "mathx/constants.hpp"
#include "rendezvous/core.hpp"
#include "rendezvous/schedule.hpp"
#include "search/algorithm4.hpp"
#include "search/times.hpp"
#include "sim/simulator.hpp"

namespace {

void heading(const char* text) {
  std::cout << "\n--- " << text << " ---------------------------------\n";
}

}  // namespace

int main() {
  using namespace rv;
  std::cout
      << "Symmetry Breaking in the Plane: Rendezvous by Robots with Unknown\n"
         "Attributes (PODC 2019) - an executable walkthrough\n";

  // =========================================================================
  heading("Section 2: search");
  {
    const double d = 2.0, r = 0.125;
    std::cout << "A robot with visibility r = " << r
              << " must find a target at unknown distance d = " << d << ".\n";
    std::cout << "Theorem 1 bound: 6(pi+1) log2(d^2/r) d^2/r = "
              << search::theorem1_bound(d, r) << "\n";
    sim::SimOptions opts;
    opts.visibility = r;
    opts.max_time = search::theorem1_bound(d, r) + 1.0;
    const auto res = sim::simulate_search(search::make_search_program(),
                                          geom::polar(d, 2.1), opts);
    std::cout << "Algorithm 4, simulated: found at t = " << res.time << " ("
              << 100.0 * res.time / search::theorem1_bound(d, r)
              << "% of the bound)\n";
    std::cout << "Lemma 2 check: Search(3) takes 3(pi+1)(3+1)2^4 = "
              << search::time_search_round(3) << " exactly.\n";
  }

  // =========================================================================
  heading("Section 3: rendezvous with symmetric clocks (tau = 1)");
  {
    geom::RobotAttributes attrs;
    attrs.speed = 1.0;
    attrs.orientation = mathx::kPi / 2.0;  // compasses disagree by 90 deg
    const double d = 1.0, r = 0.2;
    const double m = geom::mu(attrs.speed, attrs.orientation);
    std::cout << "Two robots, same speed and clock, compasses 90 degrees\n"
                 "apart (chi = +1).  Lemma 6: the separation follows a\n"
                 "mu-scaled copy of the common trajectory, mu = "
              << m << ".\n";
    std::cout << "Theorem 2 bound (equivalent search on d/mu, r/mu): "
              << analysis::theorem2_bound(attrs, d, r) << "\n";
    rendezvous::Scenario scenario;
    scenario.attrs = attrs;
    scenario.offset = {d, 0.0};
    scenario.visibility = r;
    scenario.algorithm = rendezvous::AlgorithmChoice::kAlgorithm4;
    scenario.max_time = analysis::theorem2_bound(attrs, d, r) + 1.0;
    const auto out = rendezvous::run_scenario(scenario);
    std::cout << "Algorithm 4 as rendezvous, simulated: met at t = "
              << out.sim.time << "\n";
    std::cout << "The infeasible corner: v = 1, phi = 0, chi = +1 has mu = "
              << geom::mu(1.0, 0.0)
              << " - the difference map is zero; Theorem 4 says no "
                 "algorithm exists.\n";
  }

  // =========================================================================
  heading("Section 4: rendezvous with asymmetric clocks (tau != 1)");
  {
    const double tau = 0.75, d = 1.0, r = 0.3;  // t = 3/4 > 2/3: Lemma 12 branch
    geom::RobotAttributes attrs;
    attrs.time_unit = tau;
    std::cout << "Identical robots except the clock: tau = " << tau << ".\n";
    std::cout << "Lemma 8 schedule: I(3) = " << rendezvous::inactive_start(3)
              << ", A(3) = " << rendezvous::active_start(3) << ".\n";
    const int n = search::guaranteed_round(d, r);
    std::cout << "Lemma 13: k* = " << rendezvous::rendezvous_round_bound(tau, n)
              << " (stationary-find round n = " << n << ")";
    std::cout << "; exact Lemma 12 (Lambert W): k = "
              << analysis::lemma12_exact_round_bound(tau, n) << ".\n";
    const double bound = analysis::theorem3_bound(tau, d, r);
    const auto out = rendezvous::run_universal(attrs, d, r, bound + 1.0);
    std::cout << "Algorithm 7, simulated: met at t = " << out.sim.time
              << " (Lemma 14 bound " << bound << ")\n";
  }

  // =========================================================================
  heading("Theorem 4: the feasibility frontier");
  {
    struct Probe {
      const char* label;
      geom::RobotAttributes a;
    };
    geom::RobotAttributes clocks, speeds, compass, identical, mirror;
    clocks.time_unit = 0.5;
    speeds.speed = 2.0;
    compass.orientation = mathx::kPi;
    mirror.chirality = -1;
    mirror.orientation = 1.0;
    for (const auto& probe :
         {Probe{"different clocks", clocks}, Probe{"different speeds", speeds},
          Probe{"different compasses", compass},
          Probe{"identical robots", identical},
          Probe{"mirror robots", mirror}}) {
      std::cout << "  " << probe.label << ": "
                << rendezvous::describe(rendezvous::classify(probe.a)) << '\n';
    }
  }

  std::cout << "\nEvery number above is recomputed live by the library; the\n"
               "full sweeps live in bench/ and EXPERIMENTS.md.\n";
  return 0;
}
