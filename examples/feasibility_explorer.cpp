// feasibility_explorer — walks the attribute space of Theorem 4 and
// prints, for each (v, tau, phi, chi) cell, the theory verdict and a
// quick simulation outcome.  Useful to get intuition for *why* the
// three feasible families break symmetry and the two infeasible ones
// cannot.
//
//   $ ./feasibility_explorer [--quick] [--horizon 2e4]

#include <cmath>
#include <iostream>
#include <vector>

#include "geom/difference_map.hpp"
#include "io/args.hpp"
#include "io/table.hpp"
#include "mathx/constants.hpp"
#include "rendezvous/core.hpp"
#include "rendezvous/feasibility.hpp"

int main(int argc, char** argv) {
  using namespace rv;
  using rendezvous::FeasibilityClass;

  io::Args args;
  args.declare_bool("quick", "skip the simulations, print theory only");
  args.declare_double("horizon", 2e4, "simulation horizon per cell");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n' << args.usage("feasibility_explorer");
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.usage("feasibility_explorer");
    return 0;
  }
  const bool quick = args.get_bool("quick");
  const double horizon = args.get_double("horizon");

  std::cout
      << "Theorem 4: rendezvous is feasible iff\n"
      << "    tau != 1   OR   v != 1   OR   (chi = +1 AND 0 < phi < 2pi)\n\n";

  const std::vector<double> speeds{0.5, 1.0, 2.0};
  const std::vector<double> taus{0.5, 1.0};
  const std::vector<double> phis{0.0, mathx::kPi / 2.0};
  const std::vector<int> chis{1, -1};

  io::Table table({"v", "tau", "phi", "chi", "verdict", "why",
                   quick ? "mu / det" : "simulated"});
  int feasible_cells = 0, infeasible_cells = 0;

  for (const double tau : taus) {
    for (const double v : speeds) {
      for (const double phi : phis) {
        for (const int chi : chis) {
          geom::RobotAttributes a;
          a.speed = v;
          a.time_unit = tau;
          a.orientation = phi;
          a.chirality = chi;
          const auto cls = rendezvous::classify(a);
          const bool ok = rendezvous::is_feasible(cls);
          (ok ? feasible_cells : infeasible_cells)++;

          std::string last;
          if (quick) {
            last = tau == 1.0
                       ? "det=" + io::format_fixed(
                                      geom::difference_determinant(v, phi, chi),
                                      3)
                       : "-";
          } else {
            rendezvous::Scenario s;
            s.attrs = a;
            s.offset = {1.0, 0.3};
            s.visibility = 0.25;
            s.algorithm = rendezvous::AlgorithmChoice::kAlgorithm7;
            s.max_time = horizon;
            const auto out = rendezvous::run_scenario(s);
            last = out.sim.met
                       ? "met t=" + io::format_fixed(out.sim.time, 1)
                       : "no meet (min sep " +
                             io::format_fixed(out.sim.min_distance, 3) + ")";
          }

          std::string why;
          switch (cls) {
            case FeasibilityClass::kDifferentClocks: why = "clocks"; break;
            case FeasibilityClass::kDifferentSpeeds: why = "speeds"; break;
            case FeasibilityClass::kOrientationOnly: why = "compass"; break;
            case FeasibilityClass::kInfeasibleIdentical:
              why = "identical";
              break;
            case FeasibilityClass::kInfeasibleMirror: why = "mirror"; break;
          }
          table.add_row({io::format_fixed(v, 1), io::format_fixed(tau, 1),
                         io::format_fixed(phi, 2), std::to_string(chi),
                         ok ? "feasible" : "INFEASIBLE", why, last});
        }
      }
    }
  }

  table.print(std::cout, "attribute grid (d = |(1, 0.3)|, r = 0.25):");
  std::cout << '\n'
            << feasible_cells << " feasible cells, " << infeasible_cells
            << " infeasible cells.\n"
            << "note: infeasible cells can never be *observed* to fail in "
               "finite time — the verdict is structural (Theorem 4; see the "
               "separation certificates in bench_e8_feasibility).\n";
  return 0;
}
