// feasibility_explorer — walks the attribute space of Theorem 4 and
// prints, for each (v, tau, phi, chi) cell, the theory verdict and a
// quick simulation outcome.  Useful to get intuition for *why* the
// three feasible families break symmetry and the two infeasible ones
// cannot.
//
// The grid is a declarative `engine::ScenarioSet`; the simulations fan
// out across cores through `engine::run_scenarios`.
//
//   $ ./feasibility_explorer [--quick] [--horizon 2e4] [--threads 0]

#include <cmath>
#include <iostream>
#include <vector>

#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"
#include "geom/difference_map.hpp"
#include "io/args.hpp"
#include "io/table.hpp"
#include "mathx/constants.hpp"
#include "rendezvous/core.hpp"
#include "rendezvous/feasibility.hpp"

int main(int argc, char** argv) {
  using namespace rv;
  using rendezvous::FeasibilityClass;

  io::Args args;
  args.declare_bool("quick", "skip the simulations, print theory only");
  args.declare_double("horizon", 2e4, "simulation horizon per cell");
  args.declare_int("threads", 0, "worker threads (0 = all cores)");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n' << args.usage("feasibility_explorer");
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.usage("feasibility_explorer");
    return 0;
  }
  const bool quick = args.get_bool("quick");
  const double horizon = args.get_double("horizon");

  std::cout
      << "Theorem 4: rendezvous is feasible iff\n"
      << "    tau != 1   OR   v != 1   OR   (chi = +1 AND 0 < phi < 2pi)\n\n";

  // The whole experiment as data: four attribute axes, one base cell.
  engine::ScenarioSet set;
  set.speeds({0.5, 1.0, 2.0})
      .time_units({0.5, 1.0})
      .orientations({0.0, mathx::kPi / 2.0})
      .chiralities({1, -1})
      .offsets({{1.0, 0.3}})
      .visibility(0.25)
      .algorithm(rendezvous::AlgorithmChoice::kAlgorithm7)
      .max_time(horizon);
  const std::vector<engine::LabeledScenario> cells = set.materialize();

  // Theory-only mode never simulates; otherwise the runner fans the
  // grid out across cores.
  engine::ResultSet results;
  if (!quick) {
    engine::RunnerOptions ropts;
    ropts.threads = static_cast<unsigned>(args.get_int("threads"));
    results = engine::run_scenarios(cells, ropts);
  }

  io::Table table({"v", "tau", "phi", "chi", "verdict", "why",
                   quick ? "mu / det" : "simulated"});
  int feasible_cells = 0, infeasible_cells = 0;

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const geom::RobotAttributes& a = cells[i].scenario.attrs;
    const auto cls = rendezvous::classify(a);
    const bool ok = rendezvous::is_feasible(cls);
    (ok ? feasible_cells : infeasible_cells)++;

    std::string last;
    if (quick) {
      last = a.time_unit == 1.0
                 ? "det=" + io::format_fixed(
                                geom::difference_determinant(
                                    a.speed, a.orientation, a.chirality),
                                3)
                 : "-";
    } else {
      const auto& sim = results[i].outcome.sim;
      last = sim.met ? "met t=" + io::format_fixed(sim.time, 1)
                     : "no meet (min sep " +
                           io::format_fixed(sim.min_distance, 3) + ")";
    }

    std::string why;
    switch (cls) {
      case FeasibilityClass::kDifferentClocks: why = "clocks"; break;
      case FeasibilityClass::kDifferentSpeeds: why = "speeds"; break;
      case FeasibilityClass::kOrientationOnly: why = "compass"; break;
      case FeasibilityClass::kInfeasibleIdentical:
        why = "identical";
        break;
      case FeasibilityClass::kInfeasibleMirror: why = "mirror"; break;
    }
    table.add_row({io::format_fixed(a.speed, 1),
                   io::format_fixed(a.time_unit, 1),
                   io::format_fixed(a.orientation, 2),
                   std::to_string(a.chirality),
                   ok ? "feasible" : "INFEASIBLE", why, last});
  }

  table.print(std::cout, "attribute grid (d = |(1, 0.3)|, r = 0.25):");
  std::cout << '\n'
            << feasible_cells << " feasible cells, " << infeasible_cells
            << " infeasible cells.\n"
            << "note: infeasible cells can never be *observed* to fail in "
               "finite time — the verdict is structural (Theorem 4; see the "
               "separation certificates in bench_e8_feasibility).\n";
  return 0;
}
