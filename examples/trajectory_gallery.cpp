// trajectory_gallery — renders the geometric structure of the paper's
// algorithms as a set of SVG files:
//
//   gallery_algorithm1.svg  SearchCircle(δ): out, around, back
//   gallery_algorithm2.svg  SearchAnnulus: the 2ρ-spaced circle stack
//   gallery_algorithm3.svg  Search(k): all 2k annuli of round k
//   gallery_equivalent.svg  a rendezvous pair (S, S′) and the
//                           equivalent search trajectory T∘·S of
//                           Definition 1, drawn together
//
//   $ ./trajectory_gallery [--outdir .]

#include <iostream>
#include <string>

#include "analysis/reduction.hpp"
#include "geom/difference_map.hpp"
#include "io/args.hpp"
#include "mathx/constants.hpp"
#include "search/paths.hpp"
#include "sim/trace.hpp"
#include "search/algorithm4.hpp"
#include "traj/sampler.hpp"
#include "viz/plot.hpp"

int main(int argc, char** argv) {
  using namespace rv;

  io::Args args;
  args.declare("outdir", ".", "directory for the SVG files");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n' << args.usage("trajectory_gallery");
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.usage("trajectory_gallery");
    return 0;
  }
  const std::string dir = args.get("outdir");
  auto out = [&dir](const std::string& name) { return dir + "/" + name; };

  // --- Algorithm 1: one SearchCircle -------------------------------------
  {
    const auto path = search::search_circle_path(1.0);
    auto canvas = viz::plot_trajectories(
        {viz::series_from_path(path, "#1f77b4", "SearchCircle(1)")});
    canvas.save(out("gallery_algorithm1.svg"));
  }

  // --- Algorithm 2: one annulus ------------------------------------------
  {
    const auto path = search::search_annulus_path(0.5, 1.0, 0.0625);
    auto canvas = viz::plot_trajectories(
        {viz::series_from_path(path, "#1f77b4",
                               "SearchAnnulus(0.5, 1, 1/16)")});
    viz::Style annulus_style;
    annulus_style.stroke = "#d62728";
    annulus_style.dash = "4 3";
    canvas.circle({0.0, 0.0}, 0.5, annulus_style);
    canvas.circle({0.0, 0.0}, 1.0, annulus_style);
    canvas.save(out("gallery_algorithm2.svg"));
  }

  // --- Algorithm 3: Search(2) ---------------------------------------------
  {
    const auto path = search::search_round_path(2);
    auto canvas = viz::plot_trajectories(
        {viz::series_from_path(path, "#1f77b4", "Search(2)", 2e-3)});
    viz::draw_search_annuli(canvas, 2, "#bbbbbb");
    canvas.save(out("gallery_algorithm3.svg"));
  }

  // --- Definition 1: the equivalent-search reduction ----------------------
  {
    geom::RobotAttributes attrs;
    attrs.speed = 1.4;
    attrs.orientation = mathx::kPi / 3.0;
    attrs.chirality = -1;
    const geom::Vec2 offset{1.5, 0.8};
    const double horizon = 30.0;

    sim::GlobalTrace trace_r(search::make_search_program(),
                             geom::reference_attributes(), {0.0, 0.0},
                             horizon);
    sim::GlobalTrace trace_rp(search::make_search_program(), attrs, offset,
                              horizon);
    // Equivalent search trajectory: T∘·S(t), sampled densely.
    const geom::Mat2 t_circ = geom::difference_matrix(attrs);
    traj::BufferedTrajectory local(search::make_search_program());
    viz::TrajectorySeries equivalent;
    equivalent.color = "#2ca02c";
    equivalent.label = "T∘·S(t) — the equivalent search";
    for (int i = 0; i <= 3000; ++i) {
      const double t = horizon * i / 3000.0;
      equivalent.points.push_back(t_circ * local.position_at(t));
    }

    viz::TrajectorySeries sr;
    sr.points = trace_r.polyline(2e-3);
    sr.color = "#1f77b4";
    sr.label = "R: S(t)";
    viz::TrajectorySeries srp;
    srp.points = trace_rp.polyline(2e-3);
    srp.color = "#d62728";
    srp.label = "R': offset + v·R(φ)·C(χ)·S(t)";

    auto canvas = viz::plot_trajectories({sr, srp, equivalent});
    canvas.marker(offset, "#d62728");
    canvas.save(out("gallery_equivalent.svg"));
  }

  std::cout << "wrote gallery_algorithm1.svg, gallery_algorithm2.svg, "
               "gallery_algorithm3.svg, gallery_equivalent.svg to "
            << dir << '\n';
  return 0;
}
