// asymmetric_clocks — the paper's headline scenario (Section 4): two
// robots identical in every respect except their clocks.  No trajectory
// geometry can separate them; only the *schedule* of Algorithm 7 can.
//
// Shows the phase schedule of both robots, the predicted round bound
// k* (Lemma 13), runs a clock-ratio sweep through the parallel
// `engine::Runner` (the requested tau plus context points, so the
// tau → 1 blow-up is visible), and writes the Figure 1/3 style Gantt
// chart with the meeting instant marked.
//
//   $ ./asymmetric_clocks [--tau 0.6] [--d 1.0] [--r 0.4]
//                         [--svg clocks.svg]

#include <algorithm>
#include <iostream>
#include <vector>

#include "analysis/bounds.hpp"
#include "engine/runner.hpp"
#include "engine/scenario_set.hpp"
#include "io/args.hpp"
#include "io/table.hpp"
#include "mathx/binary.hpp"
#include "rendezvous/core.hpp"
#include "rendezvous/schedule.hpp"
#include "search/times.hpp"
#include "viz/gantt.hpp"

int main(int argc, char** argv) {
  using namespace rv;

  io::Args args;
  args.declare_double("tau", 0.6, "clock ratio of the second robot (0,1)");
  args.declare_double("d", 1.0, "initial distance");
  args.declare_double("r", 0.4, "visibility radius");
  args.declare("svg", "clocks.svg", "output SVG file");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n' << args.usage("asymmetric_clocks");
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.usage("asymmetric_clocks");
    return 0;
  }

  const double tau = args.get_double("tau");
  const double d = args.get_double("d");
  const double r = args.get_double("r");
  if (!(tau > 0.0) || tau == 1.0) {
    std::cerr << "need tau in (0,1) or (1,inf) — tau = 1 is the symmetric "
                 "case (see quickstart)\n";
    return 1;
  }
  const double tau_norm = tau < 1.0 ? tau : 1.0 / tau;

  const auto dec = mathx::dyadic_decompose(tau_norm);
  std::cout << "clock ratio tau = " << tau << "  (Lemma 13 form: t = " << dec.t
            << ", a = " << dec.a << ")\n";

  const int n = search::guaranteed_round(d, r);
  const int k_star = rendezvous::rendezvous_round_bound(tau_norm, n);
  const double bound = analysis::theorem3_bound(tau_norm, d, r);
  std::cout << "stationary-find round n = " << n
            << "; Lemma 13 round bound k* = " << k_star
            << "; Lemma 14 time bound = " << bound << "\n\n";

  // Print the first few scheduled phases of both robots.
  io::Table table({"n", "R inactive", "R active", "R' inactive", "R' active"});
  for (int i = 1; i <= std::min(6, k_star); ++i) {
    const auto ri = rendezvous::inactive_phase_global(i, 1.0);
    const auto ra = rendezvous::active_phase_global(i, 1.0);
    const auto pi_ = rendezvous::inactive_phase_global(i, tau_norm);
    const auto pa = rendezvous::active_phase_global(i, tau_norm);
    auto fmt = [](const mathx::Interval& iv) {
      std::string out("[");
      out += io::format_fixed(iv.lo, 0);
      out += ", ";
      out += io::format_fixed(iv.hi, 0);
      out += ")";
      return out;
    };
    table.add_row({std::to_string(i), fmt(ri), fmt(ra), fmt(pi_), fmt(pa)});
  }
  table.print(std::cout, "phase schedule (global time):");

  // Run the real thing — the requested tau plus context clock ratios,
  // declared as one scenario set and fanned out by the engine runner.
  std::vector<double> sweep_taus{tau};
  for (const double t : {0.5, 0.75, 0.9}) {
    if (t != tau) sweep_taus.push_back(t);
  }
  engine::ScenarioSet set;
  set.time_units(sweep_taus)
      .distances({d})
      .visibility(r)
      .algorithm(rendezvous::AlgorithmChoice::kAlgorithm7)
      .horizon([&](const rendezvous::Scenario& s) {
        const double t = s.attrs.time_unit;
        return analysis::theorem3_bound(t < 1.0 ? t : 1.0 / t, d, r) + 1.0;
      });
  const engine::ResultSet results = engine::run_scenarios(set);

  io::Table sweep({"tau", "k*", "Lem 14 bound", "meet time", "% of bound"});
  for (const engine::RunRecord& rec : results) {
    const double rec_tau = rec.scenario.attrs.time_unit;
    const double rec_norm = rec_tau < 1.0 ? rec_tau : 1.0 / rec_tau;
    const double rec_bound = analysis::theorem3_bound(rec_norm, d, r);
    if (!rec.outcome.sim.met) {
      std::cerr << "no meeting before the Lemma 14 bound — this is a bug\n";
      return 1;
    }
    sweep.add_row(
        {io::format_fixed(rec_tau, 3),
         std::to_string(rendezvous::rendezvous_round_bound(rec_norm, n)),
         io::format_fixed(rec_bound, 1),
         io::format_fixed(rec.outcome.sim.time, 2),
         io::format_fixed(100.0 * rec.outcome.sim.time / rec_bound, 2) + "%"});
  }
  sweep.print(std::cout,
              "\nclock-ratio sweep (first row = requested tau; note the "
              "bound blow-up as tau -> 1):");

  const auto& outcome = results[0].outcome;
  std::cout << "\nrendezvous at t = " << outcome.sim.time << " ("
            << io::format_fixed(100.0 * outcome.sim.time / bound, 2)
            << "% of the bound)\n";

  // Gantt chart with the meeting instant highlighted.
  std::vector<viz::GanttRow> rows(2);
  rows[0].label = "R (tau=1)";
  rows[1].label = "R' (tau=" + io::format_fixed(tau_norm, 3) + ")";
  const int shown_rounds = std::min(k_star + 1, 12);
  for (int i = 1; i <= shown_rounds; ++i) {
    for (int robot = 0; robot < 2; ++robot) {
      const double t = robot == 0 ? 1.0 : tau_norm;
      const auto inact = rendezvous::inactive_phase_global(i, t);
      const auto act = rendezvous::active_phase_global(i, t);
      rows[robot].phases.push_back(
          {inact.lo, inact.hi, viz::PhaseKind::kInactive, i});
      rows[robot].phases.push_back(
          {act.lo, act.hi, viz::PhaseKind::kActive, i});
    }
  }
  viz::HighlightWindow meet{outcome.sim.time * 0.98, outcome.sim.time * 1.02,
                            "#2ca02c", "meet"};
  viz::GanttOptions gopt;
  gopt.time_min = 1.0;
  gopt.time_max = std::max(outcome.sim.time * 4.0, 100.0);
  viz::render_gantt(rows, {meet}, gopt).save(args.get("svg"));
  std::cout << "schedule chart written to " << args.get("svg") << '\n';
  return 0;
}
