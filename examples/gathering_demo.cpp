// gathering_demo — the paper's open problem, live: N robots with
// pairwise-different attributes all run Algorithm 7; watch which pairs
// meet and how the configuration evolves.  Writes an SVG of the global
// traces.
//
//   $ ./gathering_demo [--n 3] [--r 0.2] [--horizon 2e4] [--svg gather.svg]

#include <iostream>
#include <vector>

#include "gather/multi_simulator.hpp"
#include "io/args.hpp"
#include "io/table.hpp"
#include "mathx/constants.hpp"
#include "rendezvous/algorithm7.hpp"
#include "sim/trace.hpp"
#include "viz/plot.hpp"

int main(int argc, char** argv) {
  using namespace rv;

  io::Args args;
  args.declare_int("n", 3, "number of robots (2..6)");
  args.declare_double("r", 0.2, "visibility radius");
  args.declare_double("horizon", 2e4, "simulation horizon");
  args.declare("svg", "gather.svg", "output SVG of the traces");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n' << args.usage("gathering_demo");
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.usage("gathering_demo");
    return 0;
  }
  const int n = args.get_int("n");
  if (n < 2 || n > 6) {
    std::cerr << "need 2 <= n <= 6\n";
    return 1;
  }
  const double r = args.get_double("r");
  const double horizon = args.get_double("horizon");

  // Distinct speeds and clocks so every pair differs in something.
  std::vector<geom::RobotAttributes> attrs(static_cast<std::size_t>(n));
  std::vector<geom::Vec2> origins;
  for (int i = 0; i < n; ++i) {
    attrs[static_cast<std::size_t>(i)].speed = 1.0 + 0.4 * i;
    attrs[static_cast<std::size_t>(i)].time_unit = 1.0 / (1.0 + 0.3 * i);
    origins.push_back(
        geom::polar(1.0, 2.0 * mathx::kPi * i / n));
  }

  std::cout << "fleet of " << n << " robots on the unit ring, r = " << r
            << ":\n";
  io::Table t({"robot", "v", "tau", "origin"});
  for (int i = 0; i < n; ++i) {
    const auto& a = attrs[static_cast<std::size_t>(i)];
    const auto& o = origins[static_cast<std::size_t>(i)];
    std::string origin_label("(");
    origin_label += io::format_fixed(o.x, 2);
    origin_label += ", ";
    origin_label += io::format_fixed(o.y, 2);
    origin_label += ")";
    t.add_row({std::to_string(i), io::format_fixed(a.speed, 2),
               io::format_fixed(a.time_unit, 3), origin_label});
  }
  t.print(std::cout);

  auto factory = [] { return rendezvous::make_rendezvous_program(); };

  gather::GatherOptions contact;
  contact.sweep.visibility = r;
  contact.sweep.max_time = horizon;
  contact.mode = gather::GatherMode::kFirstContact;
  const auto first = gather::simulate_gathering(factory, attrs, origins,
                                                contact);
  if (first.achieved) {
    std::cout << "\nfirst contact: robots " << first.pair_i << " and "
              << first.pair_j << " at t = " << first.time << '\n';
  } else {
    std::cout << "\nno pair met before the horizon\n";
  }

  gather::GatherOptions all = contact;
  all.mode = gather::GatherMode::kAllPairsGathered;
  const auto gathered = gather::simulate_gathering(factory, attrs, origins,
                                                   all);
  if (gathered.achieved) {
    std::cout << "ALL-PAIRS GATHERED at t = " << gathered.time
              << " (an open problem witnessed on this instance!)\n";
  } else {
    std::cout << "no simultaneous gathering before the horizon "
              << "(min max-pairwise seen: " << gathered.min_max_pairwise
              << ") — the open problem in action\n";
  }

  // Trace SVG up to the first-contact time (or a slice of the horizon).
  const double draw_until =
      first.achieved ? first.time : std::min(horizon, 2000.0);
  const char* colors[6] = {"#1f77b4", "#d62728", "#2ca02c",
                           "#9467bd", "#ff7f0e", "#8c564b"};
  std::vector<viz::TrajectorySeries> series;
  for (int i = 0; i < n; ++i) {
    sim::GlobalTrace trace(factory(), attrs[static_cast<std::size_t>(i)],
                           origins[static_cast<std::size_t>(i)], draw_until);
    viz::TrajectorySeries s;
    s.points = trace.polyline(2e-3);
    s.color = colors[i];
    s.label = "robot " + std::to_string(i);
    series.push_back(std::move(s));
  }
  auto canvas = viz::plot_trajectories(series);
  canvas.save(args.get("svg"));
  std::cout << "traces written to " << args.get("svg") << '\n';
  return 0;
}
