// quickstart — the 60-second tour of the library.
//
// Two anonymous robots run the same universal algorithm (Algorithm 7
// of the paper).  They know nothing about each other; here the second
// robot happens to be twice as fast.  The library simulates both in
// continuous time and reports the first moment they see each other.
//
//   $ ./quickstart [--speed 2.0] [--tau 1.0] [--phi 0] [--chi 1]
//                  [--d 1.0] [--r 0.1]

#include <iostream>

#include "io/args.hpp"
#include "rendezvous/core.hpp"
#include "rendezvous/feasibility.hpp"

int main(int argc, char** argv) {
  using namespace rv;

  io::Args args;
  args.declare_double("speed", 2.0, "speed v of the second robot");
  args.declare_double("tau", 1.0, "time unit (clock) of the second robot");
  args.declare_double("phi", 0.0, "compass rotation of the second robot");
  args.declare_int("chi", 1, "chirality of the second robot (+1/-1)");
  args.declare_double("d", 1.0, "initial distance");
  args.declare_double("r", 0.1, "visibility radius");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n' << args.usage("quickstart");
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.usage("quickstart");
    return 0;
  }

  // 1. Describe the hidden attributes of robot R' relative to robot R.
  geom::RobotAttributes attrs;
  attrs.speed = args.get_double("speed");
  attrs.time_unit = args.get_double("tau");
  attrs.orientation = args.get_double("phi");
  attrs.chirality = args.get_int("chi");

  // 2. Ask the theory first: is rendezvous even possible? (Theorem 4)
  const auto cls = rendezvous::classify(geom::validated(attrs));
  std::cout << "attributes of R' (relative to R): " << attrs << '\n'
            << "Theorem 4 says: " << rendezvous::describe(cls) << "\n\n";

  // 3. Run the universal algorithm.  Neither robot knows *which*
  //    attribute differs — Algorithm 7 handles all feasible cases.
  const double d = args.get_double("d");
  const double r = args.get_double("r");
  const auto outcome = rendezvous::run_universal(attrs, d, r, /*max_time=*/1e7);

  if (outcome.sim.met) {
    std::cout << "rendezvous! first contact at t = " << outcome.sim.time
              << "\n  R  at " << outcome.sim.position1 << "\n  R' at "
              << outcome.sim.position2
              << "\n  separation = " << outcome.sim.distance << " (r = " << r
              << ")\n  simulator work: " << outcome.sim.evals
              << " distance evaluations over " << outcome.sim.segments
              << " trajectory segments\n";
  } else {
    std::cout << "no meeting before the horizon (min separation seen: "
              << outcome.sim.min_distance << ")\n";
    if (!rendezvous::is_feasible(cls)) {
      std::cout << "...which is exactly what Theorem 4 predicts for this "
                   "attribute tuple.\n";
    }
  }
  return outcome.sim.met || !rendezvous::is_feasible(cls) ? 0 : 1;
}
